//! The [`SelfHealer`] abstraction: anything that maintains a network under
//! adversarial insertions and deletions.
//!
//! The Forgiving Graph, the distributed protocol (`fg_dist::DistHealer`),
//! the Forgiving Tree, and the naive healing baselines all implement this
//! trait, so adversaries (`fg-adversary`), measurements (`fg-metrics`)
//! and workloads (`fg-bench`) can be written once and compared head to
//! head — which is how the E4/E5/E9 experiments and the differential
//! suite are built.
//!
//! Every operation returns a typed outcome (see [`crate::api`]): inserts
//! yield [`InsertReport`]s, deletes yield [`RepairReport`]s, and batches
//! yield [`BatchReport`]s with aggregate envelope accounting. The
//! `*_observed` variants additionally stream [`HealerObserver`]
//! callbacks, so telemetry never needs to re-traverse the graph.

use crate::api::{BatchReport, HealOutcome, HealerObserver, InsertReport, RepairReport};
use crate::engine::{CompactionPolicy, PhaseTimes};
use crate::error::EngineError;
use crate::event::NetworkEvent;
use crate::stats::EngineStats;
use crate::view::View;
use fg_graph::{Graph, NodeId};

/// A self-healing network under the paper's insert/delete attack model
/// (Figure 1).
///
/// Implementations maintain two views:
/// * the **image** — the network that actually exists right now, and
/// * the **ghost** `G'` — everything ever inserted, ignoring deletions,
///   which is the reference frame for the degree and stretch metrics.
pub trait SelfHealer {
    /// Short human-readable strategy name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Adversarially inserts a node attached to `neighbors`, reporting
    /// what was attached.
    ///
    /// # Errors
    ///
    /// Implementations reject empty, duplicate or dead neighbour lists
    /// with [`EngineError`].
    fn insert(&mut self, neighbors: &[NodeId]) -> Result<InsertReport, EngineError>;

    /// Adversarially deletes `v`, runs this strategy's repair, and
    /// reports what the repair did.
    ///
    /// # Errors
    ///
    /// [`EngineError::NotAlive`] if `v` is unknown or already deleted.
    fn delete(&mut self, v: NodeId) -> Result<RepairReport, EngineError>;

    /// The current healed network.
    fn image(&self) -> &Graph;

    /// The insert-only graph `G'`.
    fn ghost(&self) -> &Graph;

    /// Whether `v` is currently alive.
    fn is_alive(&self, v: NodeId) -> bool {
        self.image().contains(v)
    }

    /// This healer's structural epoch: `nodes_ever + deletions_ever`,
    /// advancing by exactly one per applied event (see
    /// [`crate::view::epoch_of`]).
    fn epoch(&self) -> u64 {
        crate::view::epoch_of(self.image(), self.ghost())
    }

    /// An epoch-stamped read-only snapshot of this healer's state — the
    /// entry point of the query API. All reads
    /// ([`distance`](crate::QueryOps::distance),
    /// [`path`](crate::QueryOps::path),
    /// [`stretch`](crate::QueryOps::stretch), …) hang off the returned
    /// view through the [`crate::QueryOps`] extension trait; see
    /// [`crate::view`] for the snapshot semantics.
    ///
    /// The borrow makes the snapshot stable for free: no write can run
    /// while a view is alive. Healers whose reads must be globally
    /// consistent with an internal execution engine (the distributed
    /// protocol's round executor) hand out views only at consistent
    /// points — `fg_dist` materializes protocol state at round barriers,
    /// so its views are always quiescent snapshots.
    fn view(&self) -> View<'_> {
        View::over(self.image(), self.ghost())
    }

    /// Starts per-phase wall-clock profiling, for healers that support it
    /// (see [`crate::ForgivingGraph::enable_profiling`]). The default is
    /// a no-op so the trait stays object-safe and implementations without
    /// a phase structure need no changes.
    fn enable_profiling(&mut self) {}

    /// Cumulative [`PhaseTimes`] since [`SelfHealer::enable_profiling`],
    /// or `None` when unsupported or off.
    fn phase_times(&self) -> Option<PhaseTimes> {
        None
    }

    /// Installs an arena-compaction policy, for healers with a
    /// tombstoned arena (see [`crate::ForgivingGraph::set_compaction`]).
    /// The default ignores the request.
    fn set_compaction(&mut self, _policy: Option<CompactionPolicy>) {}

    /// The healer's cumulative [`EngineStats`] — lifetime counters plus
    /// the arena occupancy gauges (`arena_live` / `arena_slots`, whose
    /// ratio is the live/ever density compaction manages). `None` for
    /// healers that don't keep them.
    fn lifetime_stats(&self) -> Option<EngineStats> {
        None
    }

    /// [`SelfHealer::insert`] with streaming instrumentation.
    ///
    /// The default fires `on_insert` with the finished report; healers
    /// that track edge-level changes (the engine, the distributed
    /// protocol) override it to also stream `on_repair_edge` per
    /// attachment.
    ///
    /// # Errors
    ///
    /// Same as [`SelfHealer::insert`].
    fn insert_observed(
        &mut self,
        neighbors: &[NodeId],
        obs: &mut dyn HealerObserver,
    ) -> Result<InsertReport, EngineError> {
        let report = self.insert(neighbors)?;
        obs.on_insert(&report);
        Ok(report)
    }

    /// [`SelfHealer::delete`] with streaming instrumentation.
    ///
    /// The default fires `on_delete` with the finished report; healers
    /// that track edge-level changes override it to also stream
    /// `on_repair_edge` per image edge unit the repair touches.
    ///
    /// # Errors
    ///
    /// Same as [`SelfHealer::delete`].
    fn delete_observed(
        &mut self,
        v: NodeId,
        obs: &mut dyn HealerObserver,
    ) -> Result<RepairReport, EngineError> {
        let report = self.delete(v)?;
        obs.on_delete(&report);
        Ok(report)
    }

    /// Applies one adversarial event, returning its typed outcome.
    ///
    /// # Errors
    ///
    /// Propagates the underlying insert/delete error.
    fn apply_event(&mut self, event: &NetworkEvent) -> Result<HealOutcome, EngineError> {
        match event {
            NetworkEvent::Insert { neighbors } => {
                self.insert(neighbors).map(|report| HealOutcome::Inserted {
                    node: report.node,
                    report,
                })
            }
            NetworkEvent::Delete { node } => self
                .delete(*node)
                .map(|report| HealOutcome::Repaired { report }),
        }
    }

    /// [`SelfHealer::apply_event`] with streaming instrumentation.
    ///
    /// # Errors
    ///
    /// Propagates the underlying insert/delete error.
    fn apply_event_observed(
        &mut self,
        event: &NetworkEvent,
        obs: &mut dyn HealerObserver,
    ) -> Result<HealOutcome, EngineError> {
        match event {
            NetworkEvent::Insert { neighbors } => {
                self.insert_observed(neighbors, obs)
                    .map(|report| HealOutcome::Inserted {
                        node: report.node,
                        report,
                    })
            }
            NetworkEvent::Delete { node } => self
                .delete_observed(*node, obs)
                .map(|report| HealOutcome::Repaired { report }),
        }
    }

    /// Ingests a batch of adversarial events, stopping at the first
    /// error, and returns the per-op outcomes plus aggregates.
    ///
    /// The default implementation applies events one by one; healers with
    /// cheaper bulk paths (deferred index rebuilds, amortised allocation)
    /// may override it. The `fg-bench` ScenarioRunner feeds workloads
    /// through this entry point with observers off, so it stays on the
    /// unobserved fast path.
    ///
    /// # Errors
    ///
    /// The first failing event's error, wrapped as
    /// [`EngineError::AtEvent`] with its batch index; earlier events stay
    /// applied.
    fn apply_batch(&mut self, events: &[NetworkEvent]) -> Result<BatchReport, EngineError> {
        let mut batch = BatchReport::new();
        for (index, event) in events.iter().enumerate() {
            let outcome = self
                .apply_event(event)
                .map_err(|source| crate::api::at_event(index, event, source))?;
            batch.push(outcome);
        }
        Ok(batch)
    }

    /// [`SelfHealer::apply_batch`] with streaming instrumentation:
    /// per-op and per-edge callbacks fire as the batch runs, and
    /// `on_batch_end` fires with the returned report.
    ///
    /// # Errors
    ///
    /// Same as [`SelfHealer::apply_batch`].
    fn apply_batch_observed(
        &mut self,
        events: &[NetworkEvent],
        obs: &mut dyn HealerObserver,
    ) -> Result<BatchReport, EngineError> {
        let mut batch = BatchReport::new();
        for (index, event) in events.iter().enumerate() {
            let outcome = self
                .apply_event_observed(event, obs)
                .map_err(|source| crate::api::at_event(index, event, source))?;
            batch.push(outcome);
        }
        obs.on_batch_end(&batch);
        Ok(batch)
    }
}

impl SelfHealer for crate::ForgivingGraph {
    fn name(&self) -> &'static str {
        "forgiving-graph"
    }

    fn insert(&mut self, neighbors: &[NodeId]) -> Result<InsertReport, EngineError> {
        self.insert_with(neighbors, &mut crate::api::NoopObserver)
    }

    fn delete(&mut self, v: NodeId) -> Result<RepairReport, EngineError> {
        crate::ForgivingGraph::delete(self, v)
    }

    fn insert_observed(
        &mut self,
        neighbors: &[NodeId],
        obs: &mut dyn HealerObserver,
    ) -> Result<InsertReport, EngineError> {
        let report = self.insert_with(neighbors, obs)?;
        obs.on_insert(&report);
        Ok(report)
    }

    fn delete_observed(
        &mut self,
        v: NodeId,
        obs: &mut dyn HealerObserver,
    ) -> Result<RepairReport, EngineError> {
        let report = self.delete_with(v, obs)?;
        obs.on_delete(&report);
        Ok(report)
    }

    fn image(&self) -> &Graph {
        crate::ForgivingGraph::image(self)
    }

    fn ghost(&self) -> &Graph {
        crate::ForgivingGraph::ghost(self)
    }

    fn is_alive(&self, v: NodeId) -> bool {
        crate::ForgivingGraph::is_alive(self, v)
    }

    fn enable_profiling(&mut self) {
        crate::ForgivingGraph::enable_profiling(self);
    }

    fn phase_times(&self) -> Option<PhaseTimes> {
        crate::ForgivingGraph::phase_times(self)
    }

    fn set_compaction(&mut self, policy: Option<CompactionPolicy>) {
        crate::ForgivingGraph::set_compaction(self, policy);
    }

    fn lifetime_stats(&self) -> Option<EngineStats> {
        Some(*self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ForgivingGraph;
    use fg_graph::generators;

    #[test]
    fn forgiving_graph_is_a_self_healer() {
        let mut fg = ForgivingGraph::from_graph(&generators::star(5)).unwrap();
        let healer: &mut dyn SelfHealer = &mut fg;
        assert_eq!(healer.name(), "forgiving-graph");
        let outcome = healer
            .apply_event(&NetworkEvent::delete(NodeId::new(0)))
            .unwrap();
        let report = outcome.repair().expect("deletion yields a repair");
        assert_eq!(report.ghost_degree, 4);
        assert_eq!(report.alive_neighbors, 4);
        assert!(!healer.is_alive(NodeId::new(0)));
        assert_eq!(healer.image().node_count(), 4);
        assert_eq!(healer.ghost().node_count(), 5);
        let outcome = healer
            .apply_event(&NetworkEvent::insert([NodeId::new(1)]))
            .unwrap();
        assert_eq!(outcome.node(), Some(NodeId::new(5)));
        assert_eq!(healer.image().node_count(), 5);
    }

    #[test]
    fn batch_reports_aggregate_and_pinpoint_errors() {
        let mut fg = ForgivingGraph::from_graph(&generators::star(6)).unwrap();
        let batch = fg
            .apply_batch(&[
                NetworkEvent::insert([NodeId::new(1)]),
                NetworkEvent::delete(NodeId::new(0)),
            ])
            .unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.inserts, 1);
        assert_eq!(batch.deletes, 1);
        assert!(batch.edges_added >= 1);

        // The second delete of node 0 fails; the error carries index 1.
        let err = fg
            .apply_batch(&[
                NetworkEvent::insert([NodeId::new(1)]),
                NetworkEvent::delete(NodeId::new(0)),
            ])
            .unwrap_err();
        match err {
            EngineError::AtEvent { index, source, .. } => {
                assert_eq!(index, 1);
                assert_eq!(*source, EngineError::NotAlive(NodeId::new(0)));
            }
            other => panic!("expected AtEvent, got {other:?}"),
        }
        // The insert before the failure stayed applied.
        assert_eq!(fg.ghost().node_count(), 8);
    }

    #[test]
    fn observed_batch_streams_consistent_callbacks() {
        #[derive(Default)]
        struct Probe {
            inserts: usize,
            deletes: usize,
            added: u64,
            dropped: u64,
            batch_ends: usize,
        }
        impl HealerObserver for Probe {
            fn on_insert(&mut self, _report: &InsertReport) {
                self.inserts += 1;
            }
            fn on_delete(&mut self, _report: &RepairReport) {
                self.deletes += 1;
            }
            fn on_repair_edge(&mut self, _u: NodeId, _v: NodeId, added: bool) {
                if added {
                    self.added += 1;
                } else {
                    self.dropped += 1;
                }
            }
            fn on_batch_end(&mut self, _report: &BatchReport) {
                self.batch_ends += 1;
            }
        }

        let mut fg = ForgivingGraph::from_graph(&generators::star(8)).unwrap();
        let mut probe = Probe::default();
        let batch = fg
            .apply_batch_observed(
                &[
                    NetworkEvent::insert([NodeId::new(1), NodeId::new(2)]),
                    NetworkEvent::delete(NodeId::new(0)),
                ],
                &mut probe,
            )
            .unwrap();
        assert_eq!(probe.inserts, 1);
        assert_eq!(probe.deletes, 1);
        assert_eq!(probe.batch_ends, 1);
        assert_eq!(probe.added, batch.edges_added);
        assert_eq!(probe.dropped, batch.edges_dropped);
    }
}

//! The [`SelfHealer`] abstraction: anything that maintains a network under
//! adversarial insertions and deletions.
//!
//! The Forgiving Graph, the Forgiving Tree, and the naive healing
//! baselines all implement this trait, so adversaries (`fg-adversary`) and
//! measurements (`fg-metrics`) can be written once and compared head to
//! head — which is how the E4/E5/E9 experiments are built.

use crate::error::EngineError;
use crate::event::NetworkEvent;
use fg_graph::{Graph, NodeId};

/// A self-healing network under the paper's insert/delete attack model
/// (Figure 1).
///
/// Implementations maintain two views:
/// * the **image** — the network that actually exists right now, and
/// * the **ghost** `G'` — everything ever inserted, ignoring deletions,
///   which is the reference frame for the degree and stretch metrics.
pub trait SelfHealer {
    /// Short human-readable strategy name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Adversarially inserts a node attached to `neighbors`.
    ///
    /// # Errors
    ///
    /// Implementations reject empty, duplicate or dead neighbour lists
    /// with [`EngineError`].
    fn insert(&mut self, neighbors: &[NodeId]) -> Result<NodeId, EngineError>;

    /// Adversarially deletes `v`, then runs this strategy's repair.
    ///
    /// # Errors
    ///
    /// [`EngineError::NotAlive`] if `v` is unknown or already deleted.
    fn delete(&mut self, v: NodeId) -> Result<(), EngineError>;

    /// The current healed network.
    fn image(&self) -> &Graph;

    /// The insert-only graph `G'`.
    fn ghost(&self) -> &Graph;

    /// Whether `v` is currently alive.
    fn is_alive(&self, v: NodeId) -> bool {
        self.image().contains(v)
    }

    /// Applies one adversarial event.
    ///
    /// # Errors
    ///
    /// Propagates the underlying insert/delete error.
    fn apply_event(&mut self, event: &NetworkEvent) -> Result<(), EngineError> {
        match event {
            NetworkEvent::Insert { neighbors } => {
                self.insert(neighbors)?;
                Ok(())
            }
            NetworkEvent::Delete { node } => self.delete(*node),
        }
    }

    /// Ingests a batch of adversarial events, stopping at the first error.
    ///
    /// The default implementation applies events one by one; healers with
    /// cheaper bulk paths (deferred index rebuilds, amortised allocation)
    /// may override it. The `fg-bench` ScenarioRunner feeds workloads
    /// through this entry point.
    ///
    /// # Errors
    ///
    /// Propagates the first event's error; earlier events stay applied.
    fn apply_batch(&mut self, events: &[NetworkEvent]) -> Result<(), EngineError> {
        for event in events {
            self.apply_event(event)?;
        }
        Ok(())
    }
}

impl SelfHealer for crate::ForgivingGraph {
    fn name(&self) -> &'static str {
        "forgiving-graph"
    }

    fn insert(&mut self, neighbors: &[NodeId]) -> Result<NodeId, EngineError> {
        crate::ForgivingGraph::insert(self, neighbors)
    }

    fn delete(&mut self, v: NodeId) -> Result<(), EngineError> {
        crate::ForgivingGraph::delete(self, v).map(|_| ())
    }

    fn image(&self) -> &Graph {
        crate::ForgivingGraph::image(self)
    }

    fn ghost(&self) -> &Graph {
        crate::ForgivingGraph::ghost(self)
    }

    fn is_alive(&self, v: NodeId) -> bool {
        crate::ForgivingGraph::is_alive(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ForgivingGraph;
    use fg_graph::generators;

    #[test]
    fn forgiving_graph_is_a_self_healer() {
        let mut fg = ForgivingGraph::from_graph(&generators::star(5)).unwrap();
        let healer: &mut dyn SelfHealer = &mut fg;
        assert_eq!(healer.name(), "forgiving-graph");
        healer
            .apply_event(&NetworkEvent::delete(NodeId::new(0)))
            .unwrap();
        assert!(!healer.is_alive(NodeId::new(0)));
        assert_eq!(healer.image().node_count(), 4);
        assert_eq!(healer.ghost().node_count(), 5);
        healer
            .apply_event(&NetworkEvent::insert([NodeId::new(1)]))
            .unwrap();
        assert_eq!(healer.image().node_count(), 5);
    }
}

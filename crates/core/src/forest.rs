//! The reconstruction forest: every living virtual node of every
//! Reconstruction Tree (RT).
//!
//! The forest stores the *virtual graph* of paper §3: leaves are the
//! endpoints that survived a deletion, internal nodes are helpers simulated
//! by real processors. The healed network is the homomorphic image of this
//! forest (plus the intact original edges), computed by
//! [`crate::image::ImageGraph`].
//!
//! ## Storage
//!
//! Virtual nodes live in a flat **arena** (`Vec<Option<VNode>>`): a node is
//! created by appending a slot and removed by tombstoning it (`None`).
//! Slots are never reused, and by default never compacted, so a living
//! node's arena index is stable for its whole lifetime — mirroring the
//! workspace-wide rule that [`fg_graph::NodeId`]s are never reused. (An
//! owner may opt into [`Forest::compact`] at quiescent points; arena
//! indices are a private storage detail, so the remap is observably
//! invisible — see DESIGN.md §12.) Keys resolve to slots
//! through a per-owner sorted index (owners are dense ids), so a lookup is
//! one `Vec` access plus a binary search over that owner's handful of
//! virtual nodes, and iterating owners in order and each bucket in
//! [`crate::slot::LocalKey`] order visits keys in exactly the global
//! [`VKey`] order — the same order the `BTreeMap` it replaced produced,
//! which keeps every replay bit-identical (DESIGN.md §7).
//!
//! Structure invariants maintained here (checked by [`Forest::validate`]):
//!
//! * parent/child links are mutually consistent and acyclic;
//! * cached `leaves`/`height` agree with the children;
//! * every internal node satisfies the haft property — its left child is a
//!   complete subtree holding at least half of the leaves (paper §4);
//! * a helper's own leaf `Real(slot)` is a strict descendant of
//!   `Helper(slot)` in the same tree (the representative mechanism's
//!   placement invariant, behind Lemma 3.1);
//! * every tree with `l` leaves has exactly `l − 1` helpers, hence exactly
//!   one *free* leaf (a leaf whose slot simulates no helper).

use crate::slot::{LocalKey, Slot, VKey};
use fg_graph::SortedMap;
use serde::{Deserialize, Serialize};

/// A virtual node: a leaf (real endpoint) or a helper, with the Table 1
/// fields that drive the repair algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VNode {
    /// Parent in the RT (`None` at the root). Table 1: `RTparent`/`hparent`.
    pub parent: Option<VKey>,
    /// Left child (helpers only). Table 1: `hleftchild`.
    pub left: Option<VKey>,
    /// Right child (helpers only). Table 1: `hrightchild`.
    pub right: Option<VKey>,
    /// Leaf descendants (1 for a leaf). Table 1: `childrencount`.
    pub leaves: u32,
    /// Height of the subtree (0 for a leaf). Table 1: `height`.
    pub height: u32,
    /// The free leaf of this subtree as of its last restructuring.
    /// Table 1: `Representative`.
    pub rep: Slot,
}

impl VNode {
    fn new_leaf(slot: Slot) -> Self {
        VNode {
            parent: None,
            left: None,
            right: None,
            leaves: 1,
            height: 0,
            rep: slot,
        }
    }

    /// Whether the subtree rooted here is a complete binary tree.
    pub fn is_complete(&self) -> bool {
        self.leaves == 1u32 << self.height.min(31)
    }
}

/// The forest of all living virtual nodes, keyed by [`VKey`] and stored in
/// a tombstoned arena (see the module docs).
///
/// Mutation goes through narrow primitives so that the engine can mirror
/// every structural edge change into the image graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Forest {
    /// Slot storage; `None` is a tombstone. Slots are never reused, and
    /// move only under an explicit [`Forest::compact`].
    arena: Vec<Option<VNode>>,
    /// Per-owner sorted key → arena-slot index.
    index: Vec<SortedMap<LocalKey, u32>>,
    /// Number of living nodes (non-tombstone slots).
    live: usize,
}

/// Forests are equal when they hold the same living `(key, node)` pairs;
/// arena tombstone layout (an artifact of allocation history) is ignored.
impl PartialEq for Forest {
    fn eq(&self, other: &Self) -> bool {
        self.live == other.live && self.iter().eq(other.iter())
    }
}

impl Eq for Forest {}

impl Forest {
    /// An empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of virtual nodes (leaves + helpers).
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the forest is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Current arena extent: slots allocated and not yet reclaimed by a
    /// [`Forest::compact`], including tombstones. Grows monotonically on
    /// the default never-compact path; `len() / slots_ever()` is the
    /// live density the compaction policy watches.
    pub fn slots_ever(&self) -> usize {
        self.arena.len()
    }

    /// The arena slot currently backing `key`, if it is alive. Stable for
    /// the whole lifetime of the node unless the owner runs an explicit
    /// [`Forest::compact`].
    pub fn slot_of(&self, key: VKey) -> Option<u32> {
        self.index
            .get(key.owner().index())
            .and_then(|bucket| bucket.get(&key.local()))
            .copied()
    }

    /// Whether `key` names a living virtual node.
    pub fn contains(&self, key: VKey) -> bool {
        self.slot_of(key).is_some()
    }

    /// Borrows a node.
    pub fn get(&self, key: VKey) -> Option<&VNode> {
        self.slot_of(key)
            .and_then(|slot| self.arena[slot as usize].as_ref())
    }

    /// Node lookup that panics with context on a dangling key — internal
    /// invariants guarantee presence.
    pub(crate) fn node(&self, key: VKey) -> &VNode {
        self.get(key)
            .unwrap_or_else(|| panic!("dangling virtual node {key}"))
    }

    fn node_mut(&mut self, key: VKey) -> &mut VNode {
        match self.slot_of(key) {
            Some(slot) => self.arena[slot as usize]
                .as_mut()
                .unwrap_or_else(|| panic!("tombstoned virtual node {key}")),
            None => panic!("dangling virtual node {key}"),
        }
    }

    /// Iterates over `(key, node)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (VKey, &VNode)> {
        self.index.iter().enumerate().flat_map(move |(i, bucket)| {
            let owner = fg_graph::NodeId::new(i as u32);
            bucket.iter().map(move |(&local, &slot)| {
                let node = self.arena[slot as usize]
                    .as_ref()
                    .expect("index entries point at living slots");
                (VKey::from_local(owner, local), node)
            })
        })
    }

    /// All virtual nodes owned by one processor, in key order.
    pub fn keys_of_owner(&self, owner: fg_graph::NodeId) -> Vec<VKey> {
        self.index
            .get(owner.index())
            .map(|bucket| {
                bucket
                    .keys()
                    .map(|&local| VKey::from_local(owner, local))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Appends a fresh arena slot for `key`'s node and indexes it.
    ///
    /// # Panics
    ///
    /// Panics if `key` is already alive.
    fn alloc(&mut self, key: VKey, node: VNode) {
        let owner = key.owner().index();
        if self.index.len() <= owner {
            self.index.resize_with(owner + 1, SortedMap::new);
        }
        let slot = self.arena.len() as u32;
        let prev = self.index[owner].insert(key.local(), slot);
        assert!(prev.is_none(), "{key} already exists");
        self.arena.push(Some(node));
        self.live += 1;
    }

    /// Tombstones `key`'s arena slot and unindexes it.
    fn free(&mut self, key: VKey) {
        let slot = self
            .slot_of(key)
            .unwrap_or_else(|| panic!("freeing dangling virtual node {key}"));
        self.index[key.owner().index()].remove(&key.local());
        self.arena[slot as usize] = None;
        self.live -= 1;
    }

    /// Rebuilds a forest from its living `(key, node)` pairs — the
    /// snapshot-restore path. The pairs must describe a structurally
    /// valid forest (links included); callers are expected to run
    /// [`Forest::validate`] on the result before trusting it.
    ///
    /// # Panics
    ///
    /// Panics if a key appears twice.
    pub(crate) fn from_pairs(pairs: impl IntoIterator<Item = (VKey, VNode)>) -> Self {
        let mut forest = Forest::new();
        for (key, node) in pairs {
            forest.alloc(key, node);
        }
        forest
    }

    /// Creates an isolated leaf for `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the leaf already exists.
    pub(crate) fn create_leaf(&mut self, slot: Slot) -> VKey {
        let key = slot.real();
        self.alloc(key, VNode::new_leaf(slot));
        key
    }

    /// Creates a helper for `slot` whose children are the two given roots
    /// (left must be the complete/larger tree, per the haft property).
    /// Returns the helper's key. The representative is set to `rep`.
    ///
    /// # Panics
    ///
    /// Panics if the helper already exists, or if either child is not a
    /// root.
    pub(crate) fn create_helper(&mut self, slot: Slot, left: VKey, right: VKey, rep: Slot) -> VKey {
        let key = slot.helper();
        assert!(
            !self.contains(key),
            "helper {key} already exists (Lemma 3.1 violation)"
        );
        let (ln, rn) = (self.node(left), self.node(right));
        assert!(
            ln.parent.is_none() && rn.parent.is_none(),
            "children must be roots"
        );
        let node = VNode {
            parent: None,
            left: Some(left),
            right: Some(right),
            leaves: ln.leaves + rn.leaves,
            height: 1 + ln.height.max(rn.height),
            rep,
        };
        self.alloc(key, node);
        self.node_mut(left).parent = Some(key);
        self.node_mut(right).parent = Some(key);
        key
    }

    /// Detaches `child` from `parent` (both directions).
    ///
    /// # Panics
    ///
    /// Panics if the link does not exist.
    pub(crate) fn detach_child(&mut self, parent: VKey, child: VKey) {
        let p = self.node_mut(parent);
        if p.left == Some(child) {
            p.left = None;
        } else if p.right == Some(child) {
            p.right = None;
        } else {
            panic!("{child} is not a child of {parent}");
        }
        self.node_mut(child).parent = None;
    }

    /// Removes an isolated node from the forest (tombstoning its slot).
    ///
    /// # Panics
    ///
    /// Panics if the node still has a parent or children.
    pub(crate) fn remove_isolated(&mut self, key: VKey) {
        let n = self.node(key);
        assert!(
            n.parent.is_none() && n.left.is_none() && n.right.is_none(),
            "{key} is still linked"
        );
        self.free(key);
    }

    /// The root of the tree containing `key`.
    pub fn root_of(&self, key: VKey) -> VKey {
        let mut cur = key;
        while let Some(p) = self.node(cur).parent {
            cur = p;
        }
        cur
    }

    /// All tree roots, in key order.
    pub fn roots(&self) -> Vec<VKey> {
        self.iter()
            .filter(|(_, n)| n.parent.is_none())
            .map(|(k, _)| k)
            .collect()
    }

    /// The existing children of `key` (left first).
    pub fn children(&self, key: VKey) -> impl Iterator<Item = VKey> + '_ {
        let n = self.node(key);
        n.left.into_iter().chain(n.right)
    }

    /// The leaves of the subtree rooted at `key`, left-to-right.
    pub fn leaves_below(&self, key: VKey) -> Vec<VKey> {
        let mut out = Vec::new();
        let mut stack = vec![key];
        while let Some(k) = stack.pop() {
            let n = self.node(k);
            match (n.left, n.right) {
                (None, None) => out.push(k),
                (l, r) => {
                    // Push right first so left is processed first.
                    stack.extend(r);
                    stack.extend(l);
                }
            }
        }
        out
    }

    /// The unique *free* leaf of the tree rooted at `key`: the leaf whose
    /// slot simulates no helper. Falls back to a full scan when the cached
    /// representative went stale (see module docs); returns whether the
    /// cache was usable.
    pub(crate) fn free_leaf_of(&self, root: VKey) -> (Slot, bool) {
        let rep = self.node(root).rep;
        if !self.contains(rep.helper()) && self.contains(rep.real()) {
            // Cached representative is free; verify it belongs to this tree.
            if self.root_of(rep.real()) == root {
                return (rep, true);
            }
        }
        for leaf in self.leaves_below(root) {
            if !self.contains(leaf.slot.helper()) {
                return (leaf.slot, false);
            }
        }
        panic!("tree at {root} has no free leaf (representative invariant broken)");
    }

    /// Compacts the arena: slides every living node left (preserving
    /// relative slot order), truncates the tombstone tail, and rewrites
    /// the index through the slot remap. Returns the number of slots
    /// reclaimed.
    ///
    /// Safe to run at any quiescent point because arena indices are a
    /// private storage detail: [`VNode`]s reference each other through
    /// [`VKey`]s and [`Slot`]s (never slot indices), every external
    /// lookup goes through the index, and [`PartialEq`] already ignores
    /// tombstone layout — so compaction is observably invisible to the
    /// repair algorithm, the image, and every digest (DESIGN.md §12).
    /// Only [`Forest::slots_ever`] and the slots reported by
    /// [`Forest::slot_of`] change.
    pub fn compact(&mut self) -> usize {
        let before = self.arena.len();
        let mut remap = vec![u32::MAX; before];
        let mut write = 0usize;
        for (read, slot) in remap.iter_mut().enumerate() {
            if self.arena[read].is_some() {
                *slot = write as u32;
                if read != write {
                    self.arena[write] = self.arena[read].take();
                }
                write += 1;
            }
        }
        self.arena.truncate(write);
        for bucket in &mut self.index {
            for (_, slot) in bucket.iter_mut() {
                *slot = remap[*slot as usize];
            }
        }
        before - write
    }

    /// Distance in tree edges between two keys of the same tree.
    ///
    /// Used by tests and the E8 experiment to check the
    /// `2·⌈log₂ d⌉` neighbour-distance bound inside one RT.
    pub fn tree_distance(&self, a: VKey, b: VKey) -> Option<u32> {
        if a == b {
            return Some(0);
        }
        let mut depth_a = self.depth_of(a);
        let mut depth_b = self.depth_of(b);
        let (mut ka, mut kb) = (a, b);
        let mut dist = 0;
        while depth_a > depth_b {
            ka = self.node(ka).parent?;
            depth_a -= 1;
            dist += 1;
        }
        while depth_b > depth_a {
            kb = self.node(kb).parent?;
            depth_b -= 1;
            dist += 1;
        }
        while ka != kb {
            ka = self.node(ka).parent?;
            kb = self.node(kb).parent?;
            dist += 2;
        }
        Some(dist)
    }

    fn depth_of(&self, key: VKey) -> u32 {
        let mut d = 0;
        let mut cur = key;
        while let Some(p) = self.node(cur).parent {
            cur = p;
            d += 1;
        }
        d
    }

    /// Verifies every structural invariant; returns a description of the
    /// first violation.
    ///
    /// # Errors
    ///
    /// Returns a human-readable violation message.
    pub fn validate(&self) -> Result<(), String> {
        // Arena/index consistency: the index covers exactly the living
        // slots, each exactly once.
        let mut seen = vec![false; self.arena.len()];
        let mut indexed = 0usize;
        for (key, _) in self.iter() {
            let slot = self.slot_of(key).expect("iterated keys are indexed") as usize;
            if seen[slot] {
                return Err(format!("arena slot {slot} indexed twice"));
            }
            seen[slot] = true;
            indexed += 1;
        }
        if indexed != self.live {
            return Err(format!("live count {} but {indexed} indexed", self.live));
        }
        for (slot, entry) in self.arena.iter().enumerate() {
            if entry.is_some() && !seen[slot] {
                return Err(format!("living arena slot {slot} unreachable from index"));
            }
        }

        for (key, node) in self.iter() {
            // Link consistency.
            if let Some(p) = node.parent {
                let pn = self
                    .get(p)
                    .ok_or_else(|| format!("{key}: dangling parent {p}"))?;
                if pn.left != Some(key) && pn.right != Some(key) {
                    return Err(format!("{key}: parent {p} does not link back"));
                }
            }
            match (node.left, node.right) {
                (None, None) => {
                    if !key.is_real() {
                        return Err(format!("{key}: helper without children"));
                    }
                    if node.leaves != 1 || node.height != 0 {
                        return Err(format!("{key}: leaf with bad cache"));
                    }
                }
                (Some(l), Some(r)) => {
                    if !key.is_helper() {
                        return Err(format!("{key}: leaf with children"));
                    }
                    let ln = self
                        .get(l)
                        .ok_or_else(|| format!("{key}: dangling left {l}"))?;
                    let rn = self
                        .get(r)
                        .ok_or_else(|| format!("{key}: dangling right {r}"))?;
                    if ln.parent != Some(key) || rn.parent != Some(key) {
                        return Err(format!("{key}: child does not link back"));
                    }
                    if node.leaves != ln.leaves + rn.leaves
                        || node.height != 1 + ln.height.max(rn.height)
                    {
                        return Err(format!("{key}: stale leaves/height cache"));
                    }
                    // Haft property.
                    if !ln.is_complete() {
                        return Err(format!("{key}: left child not complete"));
                    }
                    if 2 * ln.leaves < node.leaves {
                        return Err(format!("{key}: left child below half"));
                    }
                }
                _ => return Err(format!("{key}: exactly one child")),
            }
        }
        // Per-tree checks: helper/leaf accounting, helper placement, free leaf.
        for root in self.roots() {
            let mut leaves = 0u32;
            let mut helpers = 0u32;
            let mut stack = vec![root];
            let mut free = Vec::new();
            while let Some(k) = stack.pop() {
                if k.is_real() {
                    leaves += 1;
                    if !self.contains(k.slot.helper()) {
                        free.push(k.slot);
                    }
                } else {
                    helpers += 1;
                    // The helper's own leaf must be a strict descendant.
                    let own_leaf = k.slot.real();
                    if !self.contains(own_leaf) {
                        return Err(format!("{k}: simulator leaf missing"));
                    }
                    if self.root_of(own_leaf) != root {
                        return Err(format!("{k}: simulator leaf in another tree"));
                    }
                }
                stack.extend(self.children(k));
            }
            if helpers + 1 != leaves {
                return Err(format!(
                    "tree {root}: {helpers} helpers for {leaves} leaves"
                ));
            }
            if free.len() != 1 {
                return Err(format!("tree {root}: {} free leaves", free.len()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn s(a: u32, b: u32) -> Slot {
        Slot::new(n(a), n(b))
    }

    /// Builds the RT for a deleted hub 0 with alive neighbours 1..=4:
    /// leaves real(1→0)..real(4→0), helpers assigned like the engine would.
    fn sample_tree() -> (Forest, VKey) {
        let mut f = Forest::new();
        let l1 = f.create_leaf(s(1, 0));
        let l2 = f.create_leaf(s(2, 0));
        let l3 = f.create_leaf(s(3, 0));
        let l4 = f.create_leaf(s(4, 0));
        // Join (1,2) simulated by 1; rep flows to 2.
        let h1 = f.create_helper(s(1, 0), l1, l2, s(2, 0));
        // Join (3,4) simulated by 3; rep flows to 4.
        let h3 = f.create_helper(s(3, 0), l3, l4, s(4, 0));
        // Join the two pairs simulated by 2 (rep of first); rep flows to 4.
        let root = f.create_helper(s(2, 0), h1, h3, s(4, 0));
        (f, root)
    }

    #[test]
    fn sample_tree_is_valid() {
        let (f, root) = sample_tree();
        f.validate().unwrap();
        assert_eq!(f.len(), 7);
        assert_eq!(f.roots(), vec![root]);
        assert_eq!(f.node(root).leaves, 4);
        assert_eq!(f.node(root).height, 2);
        assert!(f.node(root).is_complete());
    }

    #[test]
    fn free_leaf_is_the_representative() {
        let (f, root) = sample_tree();
        let (free, cached) = f.free_leaf_of(root);
        assert_eq!(free, s(4, 0));
        assert!(cached, "representative cache should be warm");
    }

    #[test]
    fn leaves_below_in_left_to_right_order() {
        let (f, root) = sample_tree();
        let leaves = f.leaves_below(root);
        assert_eq!(
            leaves,
            vec![
                s(1, 0).real(),
                s(2, 0).real(),
                s(3, 0).real(),
                s(4, 0).real()
            ]
        );
    }

    #[test]
    fn tree_distance_between_leaves() {
        let (f, _) = sample_tree();
        assert_eq!(f.tree_distance(s(1, 0).real(), s(2, 0).real()), Some(2));
        assert_eq!(f.tree_distance(s(1, 0).real(), s(4, 0).real()), Some(4));
        assert_eq!(f.tree_distance(s(1, 0).real(), s(1, 0).real()), Some(0));
    }

    #[test]
    fn detach_and_remove() {
        let (mut f, root) = sample_tree();
        let h1 = s(1, 0).helper();
        f.detach_child(root, h1);
        assert_eq!(f.node(h1).parent, None);
        assert_eq!(f.roots().len(), 2);
        // Root now has one child — validation must object.
        assert!(f.validate().is_err());
    }

    #[test]
    fn keys_of_owner_scans_range() {
        let (f, _) = sample_tree();
        let keys = f.keys_of_owner(n(1));
        assert_eq!(keys, vec![s(1, 0).real(), s(1, 0).helper()]);
        assert_eq!(f.keys_of_owner(n(4)), vec![s(4, 0).real()]);
        assert_eq!(f.keys_of_owner(n(9)), Vec::<VKey>::new());
    }

    #[test]
    fn validate_catches_double_free_leaf() {
        let mut f = Forest::new();
        let l1 = f.create_leaf(s(1, 0));
        let l2 = f.create_leaf(s(2, 0));
        // Helper simulated by an unrelated slot owner (5→0): its own leaf
        // is not in the tree.
        let _h = f.create_helper(s(5, 0), l1, l2, s(2, 0));
        let err = f.validate().unwrap_err();
        assert!(err.contains("simulator leaf missing"), "{err}");
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_helper_panics() {
        let mut f = Forest::new();
        let l1 = f.create_leaf(s(1, 0));
        let l2 = f.create_leaf(s(2, 0));
        let l3 = f.create_leaf(s(1, 5));
        let h = f.create_helper(s(1, 0), l1, l2, s(2, 0));
        let _ = f.create_helper(s(1, 0), h, l3, s(2, 0));
    }

    #[test]
    fn singleton_leaf_is_valid_tree() {
        let mut f = Forest::new();
        let l = f.create_leaf(s(1, 0));
        f.validate().unwrap();
        assert_eq!(f.root_of(l), l);
        assert_eq!(f.free_leaf_of(l).0, s(1, 0));
    }

    #[test]
    fn arena_slots_tombstone_and_never_move() {
        let (mut f, root) = sample_tree();
        let slots_before = f.slots_ever();
        let l1_slot = f.slot_of(s(1, 0).real()).unwrap();
        // Tear the tree apart and free the root helper.
        let h1 = s(1, 0).helper();
        let h3 = s(3, 0).helper();
        f.detach_child(root, h1);
        f.detach_child(root, h3);
        f.remove_isolated(root);
        // Freeing tombstones: total slots unchanged, survivor slots stable.
        assert_eq!(f.slots_ever(), slots_before);
        assert_eq!(f.slot_of(s(1, 0).real()), Some(l1_slot));
        assert_eq!(f.slot_of(root), None);
        assert_eq!(f.len(), 6);
        // Re-creating the same key gets a *fresh* slot (no reuse).
        let l2 = s(2, 0).real();
        let l4 = s(4, 0).real();
        f.detach_child(h1, l2);
        f.detach_child(h3, l4);
        let root2 = f.create_helper(s(2, 0), h1, h3, s(4, 0));
        assert_eq!(root2, root);
        assert_eq!(f.slots_ever(), slots_before + 1);
        assert_eq!(f.slot_of(root2), Some(slots_before as u32));
    }

    #[test]
    fn compaction_reclaims_tombstones_and_preserves_content() {
        let (mut f, root) = sample_tree();
        // Tear the root off to create tombstones mid-arena.
        let h1 = s(1, 0).helper();
        let h3 = s(3, 0).helper();
        f.detach_child(root, h1);
        f.detach_child(root, h3);
        f.remove_isolated(root);
        let reference = f.clone();
        let live = f.len();
        assert!(f.slots_ever() > live);
        let reclaimed = f.compact();
        assert_eq!(reclaimed, reference.slots_ever() - live);
        assert_eq!(f.slots_ever(), live, "arena is dense after compaction");
        f.validate().unwrap();
        assert_eq!(f, reference, "living content is untouched");
        // Relative slot order is preserved: keys keep their arena order.
        let mut slots: Vec<u32> = Vec::new();
        for (key, _) in reference.iter() {
            slots.push(f.slot_of(key).unwrap());
            assert_eq!(f.get(key), reference.get(key));
        }
        let mut ref_slots: Vec<(u32, u32)> = reference
            .iter()
            .zip(&slots)
            .map(|((k, _), &new)| (reference.slot_of(k).unwrap(), new))
            .collect();
        ref_slots.sort_unstable();
        assert!(ref_slots.windows(2).all(|w| w[0].1 < w[1].1));
        // Compacting a dense arena is a no-op.
        assert_eq!(f.compact(), 0);
        f.validate().unwrap();
    }

    #[test]
    fn compaction_then_mutation_keeps_working() {
        let (mut f, root) = sample_tree();
        let h1 = s(1, 0).helper();
        f.detach_child(root, h1);
        let h3 = s(3, 0).helper();
        f.detach_child(root, h3);
        f.remove_isolated(root);
        f.compact();
        // Rebuild the root on the compacted arena.
        let root2 = f.create_helper(s(2, 0), h1, h3, s(4, 0));
        f.validate().unwrap();
        assert_eq!(f.root_of(s(1, 0).real()), root2);
        assert_eq!(f.free_leaf_of(root2).0, s(4, 0));
    }

    #[test]
    fn equality_ignores_tombstone_history() {
        // Same living content, different allocation histories.
        let mut a = Forest::new();
        a.create_leaf(s(1, 0));
        let mut b = Forest::new();
        b.create_leaf(s(2, 0));
        b.create_leaf(s(1, 0));
        b.remove_isolated(s(2, 0).real());
        assert_eq!(a, b);
        assert_ne!(a.slots_ever(), b.slots_ever());
    }
}

//! Pure merge planning: `ComputeHaft` (Algorithm A.9) as a deterministic
//! function of exchanged data.
//!
//! In the distributed protocol, the anchors of `BT_v` exchange their
//! primary-root lists and then *each* compute the same merge blueprint
//! locally — no further coordination is needed because the algorithm is
//! deterministic. This module is that computation, shared verbatim by the
//! sequential engine (`fg-core`) and the message-passing protocol
//! (`fg-dist`), which is what makes their states provably convergent.

use crate::engine::PlacementPolicy;
use crate::slot::{Slot, VKey};
use serde::{Deserialize, Serialize};

/// The wire description of a complete tree participating in a merge: what
/// one anchor tells another about a primary root.
///
/// `rep_parent` (the representative leaf's parent) travels along so the
/// Adjacent placement policy stays a pure function of exchanged data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireTree {
    /// Root of the complete tree.
    pub root: VKey,
    /// Leaf count (a power of two).
    pub size: u32,
    /// Height of the tree (`log₂ size` for complete trees).
    pub height: u32,
    /// The tree's free representative leaf.
    pub rep: Slot,
    /// The representative leaf's current parent (`None` if the tree is the
    /// leaf itself).
    pub rep_parent: Option<VKey>,
}

impl WireTree {
    /// A singleton tree: one fresh leaf.
    pub fn leaf(slot: Slot) -> Self {
        WireTree {
            root: slot.real(),
            size: 1,
            height: 0,
            rep: slot,
            rep_parent: None,
        }
    }

    /// Whether the representative leaf hangs directly under the root (or
    /// is the root), so a helper simulated by it collapses one image edge.
    pub fn is_root_adjacent(&self) -> bool {
        self.root == self.rep.real() || self.rep_parent == Some(self.root)
    }
}

/// One helper creation: join `left` and `right` (in that child order)
/// under a fresh helper simulated by `slot`, inheriting `rep` as the
/// merged tree's representative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinStep {
    /// Left child root (the complete/bigger tree).
    pub left: VKey,
    /// Right child root.
    pub right: VKey,
    /// The simulator slot for the new helper.
    pub slot: Slot,
    /// Representative inherited by the merged tree.
    pub rep: Slot,
    /// Leaf count of the merged tree.
    pub size: u32,
    /// Height of the merged tree.
    pub height: u32,
}

/// The full blueprint for one `ComputeHaft` invocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HaftPlan {
    /// Helper creations in execution order (phase 1 then phase 2).
    pub joins: Vec<JoinStep>,
    /// The resulting haft.
    pub output: WireTree,
    /// The distinct-size complete trees entering phase 2 — exactly what a
    /// later Strip of the output haft recovers (ascending size order).
    pub phase2_inputs: Vec<WireTree>,
}

impl HaftPlan {
    /// The phase-2 spine connectors (helpers a later Strip will free):
    /// every join beyond the first `joins.len() − (phase2_inputs.len() − 1)`
    /// ... more simply, the slots of the last `phase2_inputs.len() − 1`
    /// joins.
    pub fn spine_slots(&self) -> Vec<Slot> {
        let spine_count = self.phase2_inputs.len().saturating_sub(1);
        self.joins[self.joins.len() - spine_count..]
            .iter()
            .map(|j| j.slot)
            .collect()
    }
}

/// Plans `ComputeHaft` over a non-empty forest of complete trees.
///
/// Mirrors Algorithm A.9: sort ascending by `(size, root)`, pair equal
/// sizes with carry propagation (phase 1), then chain the distinct sizes
/// under spine connectors with the bigger tree on the left (phase 2). The
/// simulator for each join comes from the placement policy.
///
/// # Panics
///
/// Panics if `trees` is empty.
pub fn plan_compute_haft(mut trees: Vec<WireTree>, policy: PlacementPolicy) -> HaftPlan {
    assert!(!trees.is_empty(), "ComputeHaft needs at least one tree");
    trees.sort_by_key(|t| (t.size, t.root));
    let mut joins = Vec::new();

    // Phase 1: carry propagation over equal sizes.
    let mut i = 0;
    while i + 1 < trees.len() {
        if trees[i].size == trees[i + 1].size {
            let a = trees.remove(i);
            let b = trees.remove(i);
            let joined = plan_join(a, b, policy, &mut joins);
            let pos = trees.partition_point(|t| (t.size, t.root) <= (joined.size, joined.root));
            trees.insert(pos, joined);
            i = i.saturating_sub(1);
        } else {
            i += 1;
        }
    }

    // Phase 2: chain distinct sizes ascending; bigger tree goes left.
    let phase2_inputs = trees.clone();
    let mut iter = trees.into_iter();
    let mut acc = iter.next().expect("checked non-empty");
    for bigger in iter {
        acc = plan_join(bigger, acc, policy, &mut joins);
    }
    HaftPlan {
        joins,
        output: acc,
        phase2_inputs,
    }
}

/// Plans one join of `left` and `right` (already in child order).
fn plan_join(
    left: WireTree,
    right: WireTree,
    policy: PlacementPolicy,
    joins: &mut Vec<JoinStep>,
) -> WireTree {
    let provider_is_left = match policy {
        PlacementPolicy::PaperExact => true,
        PlacementPolicy::Adjacent => {
            if left.is_root_adjacent() {
                true
            } else {
                !right.is_root_adjacent()
            }
        }
    };
    let (slot, donor) = if provider_is_left {
        (left.rep, right)
    } else {
        (right.rep, left)
    };
    let rep = donor.rep;
    // The inherited representative keeps its parent — unless it *was* the
    // donor tree's root (a singleton leaf), in which case it now hangs
    // directly under the new helper. Keeping this exact lets the
    // distributed protocol reuse plan outputs without re-reading state.
    let rep_parent = if donor.root == rep.real() {
        Some(slot.helper())
    } else {
        donor.rep_parent
    };
    let size = left.size + right.size;
    let height = 1 + left.height.max(right.height);
    joins.push(JoinStep {
        left: left.root,
        right: right.root,
        slot,
        rep,
        size,
        height,
    });
    WireTree {
        root: slot.helper(),
        size,
        height,
        rep,
        rep_parent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::NodeId;

    fn slot(a: u32, b: u32) -> Slot {
        Slot::new(NodeId::new(a), NodeId::new(b))
    }

    fn singles(k: u32) -> Vec<WireTree> {
        (1..=k).map(|i| WireTree::leaf(slot(i, 0))).collect()
    }

    #[test]
    fn single_tree_plans_no_joins() {
        let plan = plan_compute_haft(singles(1), PlacementPolicy::Adjacent);
        assert!(plan.joins.is_empty());
        assert_eq!(plan.output.size, 1);
        assert_eq!(plan.phase2_inputs.len(), 1);
        assert!(plan.spine_slots().is_empty());
    }

    #[test]
    fn merge_of_k_singletons_uses_k_minus_1_joins_plus_spine() {
        for k in 1..=32u32 {
            let plan = plan_compute_haft(singles(k), PlacementPolicy::Adjacent);
            assert_eq!(plan.output.size, k);
            // Phase 1 produces the set-bit trees; phase 2 adds
            // popcount−1 spine connectors; total = k−1 when k is a power
            // of two... in general (k − popcount) + (popcount − 1).
            let expect = (k - k.count_ones()) + (k.count_ones() - 1);
            assert_eq!(plan.joins.len() as u32, expect, "k = {k}");
            assert_eq!(plan.phase2_inputs.len() as u32, k.count_ones());
            assert_eq!(plan.spine_slots().len() as u32, k.count_ones() - 1);
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let a = plan_compute_haft(singles(13), PlacementPolicy::Adjacent);
        let b = plan_compute_haft(singles(13), PlacementPolicy::Adjacent);
        assert_eq!(a, b);
    }

    #[test]
    fn all_simulators_are_distinct_free_leaves() {
        let plan = plan_compute_haft(singles(24), PlacementPolicy::PaperExact);
        let mut used = std::collections::BTreeSet::new();
        for j in &plan.joins {
            assert!(used.insert(j.slot), "slot {} reused", j.slot);
        }
        // The final rep was never consumed.
        assert!(!used.contains(&plan.output.rep));
    }

    #[test]
    fn adjacency_policy_prefers_adjacent_provider() {
        // A 2-tree with adjacent rep vs a 4-tree with buried rep.
        let two = WireTree {
            root: slot(1, 0).helper(),
            size: 2,
            height: 1,
            rep: slot(2, 0),
            rep_parent: Some(slot(1, 0).helper()),
        };
        let four = WireTree {
            root: slot(3, 0).helper(),
            size: 4,
            height: 2,
            rep: slot(4, 0),
            rep_parent: Some(slot(5, 0).helper()),
        };
        let plan = plan_compute_haft(vec![four, two], PlacementPolicy::Adjacent);
        assert_eq!(plan.joins.len(), 1);
        // Phase 2 join: left = four (bigger), right = two; the adjacent
        // provider is `two`.
        assert_eq!(plan.joins[0].slot, slot(2, 0));
        assert_eq!(plan.joins[0].left, slot(3, 0).helper());
        // Paper-exact would have used the bigger (left) tree's rep.
        let paper = plan_compute_haft(vec![four, two], PlacementPolicy::PaperExact);
        assert_eq!(paper.joins[0].slot, slot(4, 0));
    }
}

//! # fg-core — the Forgiving Graph
//!
//! A reference implementation of *The Forgiving Graph: a distributed data
//! structure for low stretch under adversarial attack* (Hayes, Saia,
//! Trehan; PODC 2009, [arXiv:0902.2501]).
//!
//! An omniscient adversary alternates between inserting nodes (with
//! arbitrary attachments) and deleting nodes. After every deletion the
//! network heals itself by adding a few edges, so that at all times
//!
//! * **degree**: `deg(v, G) ≤ 3 · deg(v, G')`, and
//! * **stretch**: `dist(x, y, G) ≤ ⌈log₂ n⌉ · dist(x, y, G')`,
//!
//! where `G'` is the graph of everything ever inserted (ignoring
//! deletions) and `n` counts all nodes ever seen.
//!
//! [`ForgivingGraph`] is the sequential reference engine; the `fg-dist`
//! crate runs the same repair as a message-passing protocol and converges
//! to identical state.
//!
//! [arXiv:0902.2501]: https://arxiv.org/abs/0902.2501
//!
//! ## Example
//!
//! ```
//! use fg_core::ForgivingGraph;
//! use fg_graph::{generators, traversal, NodeId};
//!
//! // Adopt a network, kill its highest-degree node, stay connected.
//! let mut fg = ForgivingGraph::from_graph(&generators::barabasi_albert(64, 2, 7))?;
//! let hub = fg.image().iter().max_by_key(|&v| fg.image().degree(v)).unwrap();
//! fg.delete(hub)?;
//! assert!(traversal::is_connected(fg.image()));
//! assert!(fg.max_degree_ratio() <= 3.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
mod engine;
mod error;
mod event;
mod forest;
mod healer;
mod image;
mod merge;
pub mod plan;
pub mod query;
mod slot;
mod snapshot;
mod stats;
pub mod view;

pub use api::{
    BatchReport, HealOutcome, HealerObserver, InsertReport, NoopObserver, RepairReport,
    ReportDigest,
};
pub use engine::{CompactionPolicy, ForgivingGraph, PhaseTimes, PlacementPolicy};
pub use error::EngineError;
pub use event::NetworkEvent;
pub use forest::{Forest, VNode};
pub use healer::SelfHealer;
pub use image::ImageGraph;
pub use query::{stretch_ratio, CacheStats, FrozenQueryCache, QueryCache, QueryOps};
pub use slot::{Slot, VKey, VKind};
pub use stats::EngineStats;
pub use view::{epoch_of, FrozenView, GraphView, QuerySide, QuerySource, View};

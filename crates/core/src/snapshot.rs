//! Binary snapshot codec for [`ForgivingGraph`] — the checkpoint half of
//! the durability layer (DESIGN.md §11).
//!
//! A snapshot captures the engine's entire logical state: the insert-only
//! ghost graph `G'`, the alive set, the reconstruction forest, the
//! placement policy and the cumulative statistics. The healed image `G`
//! is **not** stored: it is, by the engine's own invariant
//! ([`ForgivingGraph::check_invariants`]), a pure function of the other
//! pieces — surviving original edges plus the homomorphic image of the
//! forest — so the decoder rebuilds it the same way the invariant checker
//! computes its "expected" image. Storing less than the full state keeps
//! the format small and makes a decoded snapshot structurally incapable
//! of disagreeing with the image invariant.
//!
//! The format is hand-rolled (the workspace builds offline; the vendored
//! `serde` is a no-op stub) and versioned by a leading magic. All
//! integers are little-endian. Iteration orders are the workspace's
//! deterministic orders (sorted adjacency, global [`VKey`] order), so
//! encoding the same state always yields the same bytes — which is what
//! lets the store layer name snapshot files by content hash.
//!
//! Round-trip guarantee: `from_snapshot_bytes(snapshot_bytes(fg)) == fg`
//! under [`ForgivingGraph`]'s `PartialEq` (forest equality ignores arena
//! tombstone history, which is allocation trivia, not logical state).

use crate::engine::{ForgivingGraph, PlacementPolicy};
use crate::forest::{Forest, VNode};
use crate::image::ImageGraph;
use crate::slot::{Slot, VKey, VKind};
use crate::stats::EngineStats;
use fg_graph::{Graph, NodeId};

/// Leading magic: format name + version. Bump on any layout change.
const MAGIC: &[u8; 4] = b"FGS1";

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_vkey(out: &mut Vec<u8>, key: VKey) {
    put_u32(out, key.slot.owner.raw());
    put_u32(out, key.slot.other.raw());
    out.push(match key.kind {
        VKind::Real => 0,
        VKind::Helper => 1,
    });
}

fn put_opt_vkey(out: &mut Vec<u8>, key: Option<VKey>) {
    match key {
        None => out.push(0),
        Some(k) => {
            out.push(1);
            put_vkey(out, k);
        }
    }
}

/// A bounds-checked little-endian reader over the snapshot bytes.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| format!("snapshot truncated at byte {}", self.pos))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn vkey(&mut self) -> Result<VKey, String> {
        let owner = NodeId::new(self.u32()?);
        let other = NodeId::new(self.u32()?);
        if owner == other {
            return Err("snapshot slot with equal endpoints".into());
        }
        let kind = match self.u8()? {
            0 => VKind::Real,
            1 => VKind::Helper,
            k => return Err(format!("unknown virtual-node kind {k}")),
        };
        Ok(VKey {
            slot: Slot::new(owner, other),
            kind,
        })
    }

    fn opt_vkey(&mut self) -> Result<Option<VKey>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.vkey()?)),
            f => Err(format!("bad Option flag {f}")),
        }
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl ForgivingGraph {
    /// Serializes the engine's logical state into the deterministic
    /// binary snapshot format (see the module docs). Equal states encode
    /// to equal bytes, so content-hash naming of snapshots is stable.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let n = self.nodes_ever();
        let mut out = Vec::with_capacity(64 + 9 * self.ghost.edge_count() + 40 * self.forest.len());
        out.extend_from_slice(MAGIC);
        out.push(match self.policy {
            PlacementPolicy::PaperExact => 0,
            PlacementPolicy::Adjacent => 1,
        });

        let s = self.stats;
        for word in [
            s.inserts,
            s.deletes,
            s.helpers_created,
            s.helpers_freed,
            s.leaves_created,
            s.leaves_removed,
            s.edges_added,
            s.edges_dropped,
            s.rep_fallbacks,
            s.btv_rounds,
        ] {
            put_u64(&mut out, word);
        }

        put_u32(&mut out, n as u32);
        let mut bitmap = vec![0u8; n.div_ceil(8)];
        for (i, &alive) in self.alive.iter().enumerate() {
            if alive {
                bitmap[i / 8] |= 1 << (i % 8);
            }
        }
        out.extend_from_slice(&bitmap);

        put_u32(&mut out, self.ghost.edge_count() as u32);
        for e in self.ghost.edges() {
            put_u32(&mut out, e.lo().raw());
            put_u32(&mut out, e.hi().raw());
        }

        put_u32(&mut out, self.forest.len() as u32);
        for (key, node) in self.forest.iter() {
            put_vkey(&mut out, key);
            put_opt_vkey(&mut out, node.parent);
            put_opt_vkey(&mut out, node.left);
            put_opt_vkey(&mut out, node.right);
            put_u32(&mut out, node.leaves);
            put_u32(&mut out, node.height);
            put_u32(&mut out, node.rep.owner.raw());
            put_u32(&mut out, node.rep.other.raw());
        }
        out
    }

    /// Decodes a snapshot produced by [`ForgivingGraph::snapshot_bytes`],
    /// rebuilding the healed image from the ghost ∩ alive edges plus the
    /// forest links, and re-runs the full structural audit
    /// ([`ForgivingGraph::check_invariants`]) before handing the state
    /// back.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first structural
    /// problem: truncation, an unknown magic/version, or decoded state
    /// that fails the engine invariants. Callers that need to
    /// distinguish *corrupt bytes* from *valid bytes of a different
    /// format version* should verify a content hash first — the store
    /// layer does.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut cur = Cursor::new(bytes);
        if cur.take(4)? != MAGIC {
            return Err("not an FGS1 snapshot (bad magic)".into());
        }
        let policy = match cur.u8()? {
            0 => PlacementPolicy::PaperExact,
            1 => PlacementPolicy::Adjacent,
            p => return Err(format!("unknown placement policy {p}")),
        };

        let stats = EngineStats {
            inserts: cur.u64()?,
            deletes: cur.u64()?,
            helpers_created: cur.u64()?,
            helpers_freed: cur.u64()?,
            leaves_created: cur.u64()?,
            leaves_removed: cur.u64()?,
            edges_added: cur.u64()?,
            edges_dropped: cur.u64()?,
            rep_fallbacks: cur.u64()?,
            btv_rounds: cur.u64()?,
            ..EngineStats::default()
        };

        let n = cur.u32()? as usize;
        let bitmap = cur.take(n.div_ceil(8))?;
        let alive: Vec<bool> = (0..n)
            .map(|i| bitmap[i / 8] & (1 << (i % 8)) != 0)
            .collect();

        let mut ghost = Graph::with_capacity(n);
        for _ in 0..n {
            ghost.add_node();
        }
        let edges = cur.u32()?;
        for _ in 0..edges {
            let lo = NodeId::new(cur.u32()?);
            let hi = NodeId::new(cur.u32()?);
            if lo.index() >= n || hi.index() >= n {
                return Err(format!("ghost edge ({lo},{hi}) out of range"));
            }
            ghost
                .add_edge(lo, hi)
                .map_err(|e| format!("bad ghost edge ({lo},{hi}): {e}"))?;
        }

        let vnodes = cur.u32()?;
        let mut pairs = Vec::with_capacity(vnodes as usize);
        for _ in 0..vnodes {
            let key = cur.vkey()?;
            let parent = cur.opt_vkey()?;
            let left = cur.opt_vkey()?;
            let right = cur.opt_vkey()?;
            let leaves = cur.u32()?;
            let height = cur.u32()?;
            let rep_owner = NodeId::new(cur.u32()?);
            let rep_other = NodeId::new(cur.u32()?);
            if rep_owner == rep_other {
                return Err(format!("{key}: representative with equal endpoints"));
            }
            pairs.push((
                key,
                VNode {
                    parent,
                    left,
                    right,
                    leaves,
                    height,
                    rep: Slot::new(rep_owner, rep_other),
                },
            ));
        }
        if !cur.done() {
            return Err(format!(
                "{} trailing bytes after snapshot",
                bytes.len() - cur.pos
            ));
        }
        // Keys arrive in iteration order (strictly increasing); a
        // duplicate would panic in the arena, so reject it here instead.
        for w in pairs.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(format!("forest keys out of order at {}", w[1].0));
            }
        }
        let forest = Forest::from_pairs(pairs);

        // Rebuild the image exactly the way `check_invariants` computes
        // its expected image: surviving original edges plus one unit per
        // forest parent→child link, then tombstone the dead processors.
        let mut image = ImageGraph::new();
        for _ in 0..n {
            image.add_node();
        }
        for e in ghost.edges() {
            if alive[e.lo().index()] && alive[e.hi().index()] {
                image.inc(e.lo(), e.hi());
            }
        }
        for (key, node) in forest.iter() {
            for child in node.left.iter().chain(node.right.iter()) {
                image.inc(key.owner(), child.owner());
            }
        }
        for (i, &is_alive) in alive.iter().enumerate() {
            if !is_alive {
                let v = NodeId::new(i as u32);
                if image.simple().degree(v) != 0 {
                    return Err(format!("dead node {v} still has image edges"));
                }
                image.remove_node(v);
            }
        }

        // Arena gauges aren't on the wire (they're layout, not logic);
        // recompute them from the decoded forest, which is fully dense.
        let mut stats = stats;
        stats.arena_live = forest.len() as u64;
        stats.arena_slots = forest.slots_ever() as u64;
        let fg = ForgivingGraph {
            ghost,
            alive,
            forest,
            image,
            policy,
            stats,
            compaction: None,
            profile: None,
        };
        fg.check_invariants()
            .map_err(|e| format!("decoded snapshot violates engine invariants: {e}"))?;
        Ok(fg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SelfHealer;
    use fg_graph::generators;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// A state with deletions, repairs and post-repair inserts.
    fn churned() -> ForgivingGraph {
        let mut fg = ForgivingGraph::from_graph(&generators::barabasi_albert(32, 2, 9)).unwrap();
        let _ = fg.delete(n(0)).unwrap();
        let _ = fg.delete(n(5)).unwrap();
        let _ = fg.insert(&[n(1), n(2), n(3)]).unwrap();
        let _ = fg.delete(n(1)).unwrap();
        fg
    }

    #[test]
    fn round_trip_is_identity() {
        let fg = churned();
        let bytes = fg.snapshot_bytes();
        let back = ForgivingGraph::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(back, fg);
        assert_eq!(back.stats(), fg.stats());
        assert_eq!(SelfHealer::epoch(&back), SelfHealer::epoch(&fg));
        back.check_invariants().unwrap();
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(churned().snapshot_bytes(), churned().snapshot_bytes());
    }

    #[test]
    fn restored_state_replays_identically() {
        let mut a = churned();
        let mut b = ForgivingGraph::from_snapshot_bytes(&a.snapshot_bytes()).unwrap();
        // Digest-for-digest identical behaviour after restore.
        for event in [
            crate::NetworkEvent::delete(n(3)),
            crate::NetworkEvent::insert([n(2), n(4)]),
            crate::NetworkEvent::delete(n(7)),
        ] {
            let da = a.apply_event(&event).unwrap().digest();
            let db = b.apply_event(&event).unwrap().digest();
            assert_eq!(da, db);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn empty_engine_round_trips() {
        let fg = ForgivingGraph::new();
        let back = ForgivingGraph::from_snapshot_bytes(&fg.snapshot_bytes()).unwrap();
        assert_eq!(back, fg);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let fg = churned();
        let mut bytes = fg.snapshot_bytes();
        let err = ForgivingGraph::from_snapshot_bytes(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(
            err.contains("truncated") || err.contains("out of order"),
            "{err}"
        );
        bytes[0] ^= 0xff;
        let err = ForgivingGraph::from_snapshot_bytes(&bytes).unwrap_err();
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = churned().snapshot_bytes();
        bytes.push(0);
        let err = ForgivingGraph::from_snapshot_bytes(&bytes).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }
}

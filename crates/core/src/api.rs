//! The typed operation/outcome layer: rich per-operation reports,
//! batch aggregation, and streaming observers.
//!
//! The paper's guarantees are *per-repair* quantities — the Lemma 4 cost
//! envelopes, the ≤ 3 degree increase, the ⌈log₂ n⌉ stretch — so the
//! public API returns them instead of discarding them. Every adversarial
//! operation produces a typed outcome:
//!
//! * an insertion yields an [`InsertReport`] (the new node plus the edges
//!   it attached),
//! * a deletion yields a [`RepairReport`] (what the self-healing repair
//!   did, edge-level),
//! * [`HealOutcome`] is the sum of the two, returned by
//!   [`crate::SelfHealer::apply_event`], and
//! * [`BatchReport`] aggregates a whole batch with the Theorem 1.3
//!   envelope accounting, returned by [`crate::SelfHealer::apply_batch`].
//!
//! [`HealerObserver`] is the streaming face of the same data: callbacks
//! fire per operation and per repaired edge, so collectors (degree
//! trackers, cost monitors in `fg-metrics`) never need to re-traverse the
//! graph. Every callback has a no-op default, and the engine's hot path
//! is monomorphized over [`NoopObserver`], so instrumentation is free
//! when unused.
//!
//! **Determinism note:** every field of [`RepairReport`] is a structural
//! quantity of the repair itself (not of the machinery that ran it), so
//! the sequential engine and the message-passing protocol produce
//! *bit-identical* reports for the same event on the same state — the
//! differential suite asserts exactly that. Message/round counts, which
//! are protocol-specific, stay in `fg_dist::RepairCost`.

#![deny(missing_docs)]

use crate::error::EngineError;
use crate::event::NetworkEvent;
use fg_graph::NodeId;
use serde::{Deserialize, Serialize};

/// `⌈log₂ n⌉`, floored at 1 — the paper's name length in bits, the
/// denominator of every normalized envelope (here, in `fg_dist`'s
/// Lemma 4 accounting, and in the bench tables). One definition so the
/// normalizations can never drift apart across crates.
pub fn ceil_log2(n: usize) -> u64 {
    let n = n.max(2);
    u64::from((usize::BITS - (n - 1).leading_zeros()).max(1))
}

/// What one adversarial insertion did.
///
/// Insertions need no healing (paper §3): the report records the new
/// node and the adversarial edges it attached.
#[must_use]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InsertReport {
    /// The freshly inserted node.
    pub node: NodeId,
    /// How many neighbours the adversary attached it to.
    pub neighbors: usize,
    /// Image edge units added (one per neighbour; inserts never drop
    /// edges).
    pub edges_added: u64,
}

/// What one deletion repair did — the observable quantities behind
/// Theorem 1's cost claims.
///
/// Every field is structural (a property of the repair, not of the
/// implementation that ran it): the sequential engine and the
/// distributed protocol return identical reports for identical events.
#[must_use]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairReport {
    /// The deleted node.
    pub deleted: NodeId,
    /// Its degree in `G'` at deletion time — the paper's `d`.
    pub ghost_degree: usize,
    /// How many of its neighbours were still alive.
    pub alive_neighbors: usize,
    /// Nodes ever seen at deletion time — the paper's `n`, the
    /// denominator of every normalized envelope.
    pub nodes_ever: usize,
    /// Fragments (RTs and RT-fragments) that joined `BT_v`.
    pub fragments: usize,
    /// Complete trees collected across all fragments.
    pub trees_collected: usize,
    /// Entries in the victim's will: its virtual nodes (leaves plus
    /// helpers) at deletion time — what failure detection replays.
    pub will_entries: usize,
    /// `BT_v` positions whose bucket was non-empty (fragment forests
    /// routed to their smallest anchor).
    pub buckets: usize,
    /// Distinct live processors that took part in the repair (owners of
    /// `BT_v` anchors, including the fresh leaves' owners).
    pub affected_nodes: usize,
    /// Image edge units created by the repair (two per helper join).
    pub edges_added: u64,
    /// Image edge units released (the victim's original edges plus every
    /// detached tree edge, including strips).
    pub edges_dropped: u64,
    /// Helpers created during the merge.
    pub helpers_created: u64,
    /// Helpers freed (red + stripped spine).
    pub helpers_freed: u64,
    /// New leaves (one per alive neighbour).
    pub leaves_created: u64,
    /// Leaves removed (the victim's own endpoints).
    pub leaves_removed: u64,
    /// Bottom-up merge rounds (the height of `BT_v`).
    pub btv_rounds: u32,
    /// Leaf count of the final reconstruction tree (0 if none was needed).
    pub rt_leaves: u32,
    /// Depth of the final reconstruction tree.
    pub rt_depth: u32,
}

impl RepairReport {
    /// A zero-filled report for deleting `deleted`; implementations fill
    /// in what their repair actually did.
    pub fn for_deletion(
        deleted: NodeId,
        ghost_degree: usize,
        alive_neighbors: usize,
        nodes_ever: usize,
    ) -> Self {
        RepairReport {
            deleted,
            ghost_degree,
            alive_neighbors,
            nodes_ever,
            fragments: 0,
            trees_collected: 0,
            will_entries: 0,
            buckets: 0,
            affected_nodes: 0,
            edges_added: 0,
            edges_dropped: 0,
            helpers_created: 0,
            helpers_freed: 0,
            leaves_created: 0,
            leaves_removed: 0,
            btv_rounds: 0,
            rt_leaves: 0,
            rt_depth: 0,
        }
    }

    /// Upper envelope for virtual-node churn from Theorem 1.3:
    /// `O(d log n)` where `d` is the victim's `G'` degree.
    pub fn churn(&self) -> u64 {
        self.helpers_created + self.helpers_freed + self.leaves_created + self.leaves_removed
    }

    /// `churn / (d · ⌈log₂ n⌉)` — flat across `d` and `n` when the
    /// Theorem 1.3 envelope holds.
    #[must_use = "the normalized envelope is the quantity under test"]
    pub fn normalized_churn(&self) -> f64 {
        let d = self.ghost_degree.max(1) as f64;
        self.churn() as f64 / (d * ceil_log2(self.nodes_ever) as f64)
    }
}

/// A 64-bit FNV-1a accumulator for report digests.
///
/// Golden-trace regression files store one digest per event; the fold is
/// spelled out here (no `std::hash`) so digests are stable across
/// platforms, compiler releases and hasher-seed changes — any drift in a
/// checked-in digest is a *behaviour* change, never an environment change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportDigest(u64);

impl ReportDigest {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        ReportDigest(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one 64-bit word into the digest, byte by byte.
    pub fn word(mut self, w: u64) -> Self {
        for byte in w.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// The accumulated digest value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl Default for ReportDigest {
    fn default() -> Self {
        ReportDigest::new()
    }
}

impl InsertReport {
    /// A stable structural digest of this report (see [`ReportDigest`]).
    pub fn digest(&self) -> u64 {
        ReportDigest::new()
            .word(1) // outcome tag: insert
            .word(u64::from(self.node.raw()))
            .word(self.neighbors as u64)
            .word(self.edges_added)
            .value()
    }
}

impl RepairReport {
    /// A stable structural digest over every field (see [`ReportDigest`]).
    pub fn digest(&self) -> u64 {
        ReportDigest::new()
            .word(2) // outcome tag: repair
            .word(u64::from(self.deleted.raw()))
            .word(self.ghost_degree as u64)
            .word(self.alive_neighbors as u64)
            .word(self.nodes_ever as u64)
            .word(self.fragments as u64)
            .word(self.trees_collected as u64)
            .word(self.will_entries as u64)
            .word(self.buckets as u64)
            .word(self.affected_nodes as u64)
            .word(self.edges_added)
            .word(self.edges_dropped)
            .word(self.helpers_created)
            .word(self.helpers_freed)
            .word(self.leaves_created)
            .word(self.leaves_removed)
            .word(u64::from(self.btv_rounds))
            .word(u64::from(self.rt_leaves))
            .word(u64::from(self.rt_depth))
            .value()
    }
}

/// The typed outcome of one adversarial event.
#[must_use]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealOutcome {
    /// The event inserted a node (no healing needed).
    Inserted {
        /// The new node's id.
        node: NodeId,
        /// What the insertion attached.
        report: InsertReport,
    },
    /// The event deleted a node and the network repaired itself.
    Repaired {
        /// What the repair did.
        report: RepairReport,
    },
}

impl HealOutcome {
    /// The inserted node, if this outcome was an insertion.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            HealOutcome::Inserted { node, .. } => Some(*node),
            HealOutcome::Repaired { .. } => None,
        }
    }

    /// The repair report, if this outcome was a deletion.
    pub fn repair(&self) -> Option<&RepairReport> {
        match self {
            HealOutcome::Inserted { .. } => None,
            HealOutcome::Repaired { report } => Some(report),
        }
    }

    /// Whether this outcome was a repair (deletion).
    pub fn is_repair(&self) -> bool {
        matches!(self, HealOutcome::Repaired { .. })
    }

    /// Image edge units this operation added.
    pub fn edges_added(&self) -> u64 {
        match self {
            HealOutcome::Inserted { report, .. } => report.edges_added,
            HealOutcome::Repaired { report } => report.edges_added,
        }
    }

    /// Image edge units this operation dropped.
    pub fn edges_dropped(&self) -> u64 {
        match self {
            HealOutcome::Inserted { .. } => 0,
            HealOutcome::Repaired { report } => report.edges_dropped,
        }
    }

    /// A stable structural digest of the outcome's report (see
    /// [`ReportDigest`]) — what the golden-trace corpus records per event.
    pub fn digest(&self) -> u64 {
        match self {
            HealOutcome::Inserted { report, .. } => report.digest(),
            HealOutcome::Repaired { report } => report.digest(),
        }
    }
}

/// Per-op outcomes plus aggregate accounting for one ingestion batch —
/// what [`crate::SelfHealer::apply_batch`] returns.
///
/// Integer aggregates are maintained incrementally by [`BatchReport::push`];
/// the floating-point Theorem 1.3 envelope is computed on demand from the
/// stored outcomes so the report itself stays `Eq`.
#[must_use]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Every operation's outcome, in application order.
    pub outcomes: Vec<HealOutcome>,
    /// Insertions in the batch.
    pub inserts: u64,
    /// Deletions (repairs) in the batch.
    pub deletes: u64,
    /// Image edge units added across all operations.
    pub edges_added: u64,
    /// Image edge units dropped across all operations.
    pub edges_dropped: u64,
    /// Helpers created across all repairs.
    pub helpers_created: u64,
    /// Helpers freed across all repairs.
    pub helpers_freed: u64,
    /// Leaves created across all repairs.
    pub leaves_created: u64,
    /// Leaves removed across all repairs.
    pub leaves_removed: u64,
    /// Total bottom-up merge rounds across all repairs.
    pub btv_rounds: u64,
    /// Largest single-repair virtual-node churn in the batch.
    pub max_churn: u64,
}

impl BatchReport {
    /// An empty batch report.
    pub fn new() -> Self {
        BatchReport::default()
    }

    /// Records one outcome, updating every aggregate.
    pub fn push(&mut self, outcome: HealOutcome) {
        match &outcome {
            HealOutcome::Inserted { report, .. } => {
                self.inserts += 1;
                self.edges_added += report.edges_added;
            }
            HealOutcome::Repaired { report } => {
                self.deletes += 1;
                self.edges_added += report.edges_added;
                self.edges_dropped += report.edges_dropped;
                self.helpers_created += report.helpers_created;
                self.helpers_freed += report.helpers_freed;
                self.leaves_created += report.leaves_created;
                self.leaves_removed += report.leaves_removed;
                self.btv_rounds += u64::from(report.btv_rounds);
                self.max_churn = self.max_churn.max(report.churn());
            }
        }
        self.outcomes.push(outcome);
    }

    /// Folds another batch's outcomes into this one (in order).
    pub fn merge(&mut self, other: BatchReport) {
        for outcome in other.outcomes {
            self.push(outcome);
        }
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the batch recorded no operations.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Iterator over the repair reports of the batch's deletions.
    pub fn repairs(&self) -> impl Iterator<Item = &RepairReport> {
        self.outcomes.iter().filter_map(HealOutcome::repair)
    }

    /// Total virtual-node churn across all repairs.
    pub fn total_churn(&self) -> u64 {
        self.helpers_created + self.helpers_freed + self.leaves_created + self.leaves_removed
    }

    /// Max over the batch's repairs of `churn / (d · ⌈log₂ n⌉)` — the
    /// aggregate Theorem 1.3 / Lemma 4 envelope. `0.0` for a batch with
    /// no deletions.
    #[must_use = "the normalized envelope is the quantity under test"]
    pub fn max_normalized_churn(&self) -> f64 {
        self.repairs()
            .map(RepairReport::normalized_churn)
            .fold(0.0, f64::max)
    }
}

/// Streaming instrumentation for a self-healing network.
///
/// Implementations receive a callback per operation and — from healers
/// that track edge-level changes (the engine and the distributed
/// protocol) — per image edge unit as the repair adds or drops it, in
/// deterministic order. All callbacks default to no-ops, and the
/// unobserved hot path is monomorphized over [`NoopObserver`], so an
/// unused observer costs nothing.
///
/// Contract:
/// * `on_repair_edge` fires for every image edge-unit change of the
///   *current* operation (including an insertion's adversarial
///   attachments), before that operation's op-level callback;
/// * `on_insert` / `on_delete` fire exactly once per successful
///   operation, with the same report the operation returns;
/// * `on_batch_end` fires once per observed batch, after the last
///   operation, with the same [`BatchReport`] the batch returns;
/// * a self-loop unit dropped by the homomorphism is reported with
///   `u == v`;
/// * callback totals are consistent with the reports:
///   added/dropped edge callbacks of one operation sum to that
///   operation's `edges_added` / `edges_dropped`.
pub trait HealerObserver {
    /// One insertion completed.
    fn on_insert(&mut self, report: &InsertReport) {
        let _ = report;
    }

    /// One deletion repair completed.
    fn on_delete(&mut self, report: &RepairReport) {
        let _ = report;
    }

    /// One image edge unit changed: `(u, v)` was added (`added`) or
    /// dropped (`!added`) by the operation in progress.
    fn on_repair_edge(&mut self, u: NodeId, v: NodeId, added: bool) {
        let _ = (u, v, added);
    }

    /// A batch finished; `report` is what the batch call returns.
    fn on_batch_end(&mut self, report: &BatchReport) {
        let _ = report;
    }
}

/// The do-nothing observer the unobserved paths monomorphize over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl HealerObserver for NoopObserver {}

impl<T: HealerObserver + ?Sized> HealerObserver for &mut T {
    fn on_insert(&mut self, report: &InsertReport) {
        (**self).on_insert(report);
    }

    fn on_delete(&mut self, report: &RepairReport) {
        (**self).on_delete(report);
    }

    fn on_repair_edge(&mut self, u: NodeId, v: NodeId, added: bool) {
        (**self).on_repair_edge(u, v, added);
    }

    fn on_batch_end(&mut self, report: &BatchReport) {
        (**self).on_batch_end(report);
    }
}

/// Wraps `source` as [`EngineError::AtEvent`] so a failing trace
/// pinpoints the offending event.
pub(crate) fn at_event(index: usize, event: &NetworkEvent, source: EngineError) -> EngineError {
    EngineError::AtEvent {
        index,
        event: event.to_string(),
        source: Box::new(source),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repair(d: usize, churn_each: u64) -> RepairReport {
        RepairReport {
            helpers_created: churn_each,
            edges_added: 2 * churn_each,
            edges_dropped: 3,
            ..RepairReport::for_deletion(NodeId::new(0), d, d, 32)
        }
    }

    #[test]
    fn churn_sums_all_virtual_node_traffic() {
        let r = RepairReport {
            helpers_created: 2,
            helpers_freed: 1,
            leaves_created: 3,
            leaves_removed: 1,
            ..RepairReport::for_deletion(NodeId::new(0), 4, 3, 16)
        };
        assert_eq!(r.churn(), 7);
        // d·⌈log₂ 16⌉ = 4·4 = 16.
        assert!((r.normalized_churn() - 7.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn batch_report_aggregates_outcomes() {
        let mut batch = BatchReport::new();
        batch.push(HealOutcome::Inserted {
            node: NodeId::new(9),
            report: InsertReport {
                node: NodeId::new(9),
                neighbors: 2,
                edges_added: 2,
            },
        });
        batch.push(HealOutcome::Repaired {
            report: repair(4, 5),
        });
        batch.push(HealOutcome::Repaired {
            report: repair(4, 2),
        });
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.inserts, 1);
        assert_eq!(batch.deletes, 2);
        assert_eq!(batch.edges_added, 2 + 10 + 4);
        assert_eq!(batch.edges_dropped, 6);
        assert_eq!(batch.max_churn, 5);
        assert_eq!(batch.repairs().count(), 2);
        // worst repair: churn 5 over d·log n = 4·5 = 20.
        assert!((batch.max_normalized_churn() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_replays_outcomes() {
        let mut a = BatchReport::new();
        a.push(HealOutcome::Repaired {
            report: repair(2, 1),
        });
        let mut b = BatchReport::new();
        b.push(HealOutcome::Repaired {
            report: repair(2, 4),
        });
        a.merge(b);
        assert_eq!(a.deletes, 2);
        assert_eq!(a.max_churn, 4);
    }

    #[test]
    fn outcome_accessors() {
        let ins = HealOutcome::Inserted {
            node: NodeId::new(3),
            report: InsertReport {
                node: NodeId::new(3),
                neighbors: 1,
                edges_added: 1,
            },
        };
        assert_eq!(ins.node(), Some(NodeId::new(3)));
        assert!(!ins.is_repair());
        assert_eq!(ins.edges_added(), 1);
        assert_eq!(ins.edges_dropped(), 0);
        let rep = HealOutcome::Repaired {
            report: repair(2, 1),
        };
        assert!(rep.is_repair());
        assert!(rep.repair().is_some());
        assert_eq!(rep.node(), None);
    }

    #[test]
    fn observers_forward_through_mut_refs() {
        #[derive(Default)]
        struct Probe {
            edges: usize,
        }
        impl HealerObserver for Probe {
            fn on_repair_edge(&mut self, _u: NodeId, _v: NodeId, _added: bool) {
                self.edges += 1;
            }
        }
        fn fire<O: HealerObserver>(mut obs: O) {
            obs.on_repair_edge(NodeId::new(0), NodeId::new(1), true);
        }
        let mut probe = Probe::default();
        fire(&mut probe);
        let dynamic: &mut dyn HealerObserver = &mut probe;
        dynamic.on_repair_edge(NodeId::new(1), NodeId::new(2), false);
        assert_eq!(probe.edges, 2);
        fire(NoopObserver);
    }
}

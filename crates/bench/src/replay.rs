//! Lockstep trace replay, outcome digests, query digests, and
//! digest-file parsing — shared by the `replay_trace` binary and the
//! golden-trace regression suite (`tests/golden_traces.rs`).
//!
//! A *digest stream* is one stable 64-bit digest per event (see
//! [`fg_core::ReportDigest`]): the digest of the typed outcome the healer
//! returned. Two healers replaying the same trace produce the same digest
//! stream iff their per-event reports are bit-identical — which is the
//! protocol/engine convergence contract, so digest files double as a
//! compact regression corpus.
//!
//! *Query digests* ([`query_digest`] / [`replay_query_digests`]) extend
//! the same idea to the read side: after every event, a seeded probe set
//! of `(u, v)` pairs is answered through the healer's view
//! (`distance` / `path` / `stretch` / `same_component` / `degree`) and
//! folded into one digest — pinning the query API's answers along the
//! golden traces next to the existing outcome digests.

use crate::scenario::Scenario;
use fg_core::{
    EngineError, ForgivingGraph, GraphView, HealOutcome, NetworkEvent, PlacementPolicy, QueryOps,
    ReportDigest, SelfHealer,
};
use fg_dist::DistHealer;
use fg_graph::NodeId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Which implementation replays the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayBackend {
    /// The sequential reference engine.
    Engine,
    /// The message-passing protocol at the given executor width.
    Dist {
        /// Worker threads for the round executor (1 = inline).
        threads: usize,
    },
}

impl ReplayBackend {
    /// Builds a fresh healer over the scenario's initial graph.
    pub fn build(self, sc: &Scenario) -> Box<dyn SelfHealer> {
        match self {
            ReplayBackend::Engine => {
                Box::new(ForgivingGraph::from_graph(&sc.initial).expect("fresh G0 from trace"))
            }
            ReplayBackend::Dist { threads } => Box::new(DistHealer::from_graph_threaded(
                &sc.initial,
                PlacementPolicy::Adjacent,
                threads,
            )),
        }
    }
}

/// Replays `sc` through `backend` and returns one outcome digest per
/// event.
///
/// # Errors
///
/// Propagates the first [`EngineError`] — scenario traces are legal by
/// construction, so an error indicates a healer bug.
pub fn replay_digests(sc: &Scenario, backend: ReplayBackend) -> Result<Vec<u64>, EngineError> {
    let mut healer = backend.build(sc);
    sc.events
        .iter()
        .map(|event| healer.apply_event(event).map(|o| o.digest()))
        .collect()
}

/// One stable digest of the query API's answers on `view`, for a probe
/// set derived deterministically from `seed`, the view's epoch, and the
/// node universe. Probes cover live *and* dead ids (dead endpoints must
/// answer `None`); per pair the fold covers `distance`, `path` length
/// and validity, `stretch` bits, `same_component`, and `degree`.
pub fn query_digest(view: &impl GraphView, seed: u64, probes: usize) -> u64 {
    let n = view.ghost().nodes_ever().max(1) as u32;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ view.epoch().wrapping_mul(0x9e37_79b9));
    let mut digest = ReportDigest::new().word(view.epoch()).word(u64::from(n));
    for _ in 0..probes {
        let u = NodeId::new(rng.gen_range(0..n));
        let v = NodeId::new(rng.gen_range(0..n));
        let dist = view.distance(u, v);
        let path = view.path(u, v);
        let path_ok = match (&path, dist) {
            (None, None) => true,
            (Some(p), Some(d)) => {
                p.len() as u32 == d + 1
                    && p.first() == Some(&u)
                    && p.last() == Some(&v)
                    && (p.len() == 1 || p.windows(2).all(|e| view.image().has_edge(e[0], e[1])))
            }
            _ => false,
        };
        digest = digest
            .word(u64::from(u.raw()))
            .word(u64::from(v.raw()))
            .word(dist.map_or(0, |d| u64::from(d) + 1))
            .word(path.map_or(0, |p| p.len() as u64))
            .word(u64::from(path_ok))
            .word(view.stretch(u, v).map_or(0, f64::to_bits))
            .word(u64::from(view.same_component(u, v)))
            .word(view.degree(u).map_or(0, |d| d as u64 + 1));
    }
    digest.value()
}

/// Replays `sc` through `backend` and returns one [`query_digest`] per
/// event, taken on the healer's view right after the event applied.
///
/// # Errors
///
/// Propagates the first [`EngineError`] — scenario traces are legal by
/// construction, so an error indicates a healer bug.
pub fn replay_query_digests(
    sc: &Scenario,
    backend: ReplayBackend,
    seed: u64,
    probes: usize,
) -> Result<Vec<u64>, EngineError> {
    let mut healer = backend.build(sc);
    sc.events
        .iter()
        .map(|event| {
            let _ = healer.apply_event(event)?;
            Ok(query_digest(&healer.view(), seed, probes))
        })
        .collect()
}

/// A per-event divergence between two replays of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeMismatch {
    /// Index of the diverging event.
    pub index: usize,
    /// The event itself.
    pub event: NetworkEvent,
    /// What the reference engine reported.
    pub engine: HealOutcome,
    /// What the distributed protocol reported.
    pub dist: HealOutcome,
}

impl std::fmt::Display for OutcomeMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "report mismatch at event {} ({}): engine {:?} != dist {:?}",
            self.index, self.event, self.engine, self.dist
        )
    }
}

/// Replays `sc` through the engine and the distributed protocol (at
/// `threads` executor width) in lockstep, comparing the typed outcome of
/// every event. Returns the number of events verified.
///
/// # Errors
///
/// The first per-event report mismatch (boxed — it carries both
/// reports), or the first [`EngineError`] from either healer.
pub fn verify_engine_vs_dist(
    sc: &Scenario,
    threads: usize,
) -> Result<usize, Box<dyn std::error::Error>> {
    let mut engine = ReplayBackend::Engine.build(sc);
    let mut dist = ReplayBackend::Dist { threads }.build(sc);
    for (index, event) in sc.events.iter().enumerate() {
        let a = engine.apply_event(event)?;
        let b = dist.apply_event(event)?;
        if a != b {
            return Err(Box::new(ReplayError(OutcomeMismatch {
                index,
                event: event.clone(),
                engine: a,
                dist: b,
            })));
        }
    }
    Ok(sc.events.len())
}

/// [`OutcomeMismatch`] as an error.
#[derive(Debug)]
struct ReplayError(OutcomeMismatch);

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for ReplayError {}

/// Renders a digest stream as a digest file: `#`-prefixed header lines
/// for provenance, then one lower-case 16-hex-digit digest per event.
pub fn format_digest_file(header: &str, digests: &[u64]) -> String {
    let mut out = String::new();
    for line in header.lines() {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    for d in digests {
        out.push_str(&format!("{d:016x}\n"));
    }
    out
}

/// Parses a digest file produced by [`format_digest_file`].
///
/// # Panics
///
/// Panics on malformed lines — digest files are machine-written
/// artifacts.
pub fn parse_digest_file(text: &str) -> Vec<u64> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| u64::from_str_radix(l, 16).unwrap_or_else(|_| panic!("bad digest line {l:?}")))
        .collect()
}

/// The first drift between a replayed digest stream and its recorded
/// reference, if any: `(index, expected, got)`. A length mismatch
/// reports at the shorter stream's end with `0` standing in for the
/// missing side.
pub fn first_digest_drift(expected: &[u64], got: &[u64]) -> Option<(usize, u64, u64)> {
    for (i, (e, g)) in expected.iter().zip(got.iter()).enumerate() {
        if e != g {
            return Some((i, *e, *g));
        }
    }
    match expected.len().cmp(&got.len()) {
        std::cmp::Ordering::Equal => None,
        std::cmp::Ordering::Less => Some((expected.len(), 0, got[expected.len()])),
        std::cmp::Ordering::Greater => Some((got.len(), expected[got.len()], 0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::scenario;

    #[test]
    fn digest_file_roundtrips() {
        let digests = vec![0, 1, u64::MAX, 0xdead_beef];
        let text = format_digest_file("churn n=24\nseed 7", &digests);
        assert!(text.starts_with("# churn n=24\n# seed 7\n"));
        assert_eq!(parse_digest_file(&text), digests);
    }

    #[test]
    fn drift_detection_covers_divergence_and_truncation() {
        assert_eq!(first_digest_drift(&[1, 2, 3], &[1, 2, 3]), None);
        assert_eq!(first_digest_drift(&[1, 2, 3], &[1, 9, 3]), Some((1, 2, 9)));
        assert_eq!(first_digest_drift(&[1, 2], &[1, 2, 3]), Some((2, 0, 3)));
        assert_eq!(first_digest_drift(&[1, 2, 3], &[1, 2]), Some((2, 3, 0)));
    }

    #[test]
    fn engine_and_dist_digest_streams_agree() {
        let sc = scenario("er", 20, 60, 11);
        let engine = replay_digests(&sc, ReplayBackend::Engine).expect("engine replay");
        assert_eq!(engine.len(), 60);
        for threads in [1, 3] {
            let dist = replay_digests(&sc, ReplayBackend::Dist { threads }).expect("dist replay");
            assert_eq!(
                first_digest_drift(&engine, &dist),
                None,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn verify_passes_on_legal_traces() {
        let sc = scenario("churn", 16, 40, 3);
        assert_eq!(verify_engine_vs_dist(&sc, 2).expect("lockstep"), 40);
    }

    #[test]
    fn query_digest_streams_agree_across_backends() {
        let sc = scenario("churn", 20, 50, 9);
        let engine = replay_query_digests(&sc, ReplayBackend::Engine, 0xfade, 4).expect("engine");
        assert_eq!(engine.len(), 50);
        let dist =
            replay_query_digests(&sc, ReplayBackend::Dist { threads: 2 }, 0xfade, 4).expect("dist");
        assert_eq!(first_digest_drift(&engine, &dist), None);
        // Different probe seeds genuinely probe different pairs.
        let other = replay_query_digests(&sc, ReplayBackend::Engine, 0xbeef, 4).expect("engine");
        assert_ne!(engine, other);
    }
}

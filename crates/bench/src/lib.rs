//! # fg-bench — the experiment harness
//!
//! One binary per paper artifact (see DESIGN.md §5 and EXPERIMENTS.md):
//! E1/E2 reproduce Theorem 1's degree and stretch bounds, E3 reproduces
//! Lemma 4's repair costs from the message-passing protocol, E4 the
//! Theorem 2 lower bound, E5/E9 the comparisons against the Forgiving
//! Tree and naive healers, E6–E8 the haft lemmas and the reconstruction-
//! tree distance claim, and E10 Lemma 3's helper accounting.
//!
//! Each binary prints markdown tables (the ones embedded in
//! EXPERIMENTS.md) to stdout; all of them share the [`args`] flag parser
//! (`--seed` / `--scale` / `--json`). The [`scenario`](mod@scenario) module is the
//! throughput side of the harness: named end-to-end workloads replayed
//! through any healer with batched ingestion, reported as
//! machine-readable `BENCH_*.json` via [`json`]. The [`queries`] module
//! adds the read side: mixed read/write workloads
//! ([`ScenarioRunner::run_mixed`]) serving configurable query streams
//! through the landmark cache, the uncached query API, and the naive
//! per-query-BFS baseline in one differential, separately-timed run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod json;
pub mod latency;
pub mod queries;
pub mod replay;
pub mod scenario;

use fg_core::{ForgivingGraph, PlacementPolicy};
use fg_graph::Graph;

pub use args::BenchArgs;
pub use latency::LatencyHistogram;
pub use queries::{
    answer_api, answers_agree, Answer, Query, QueryKind, QueryMix, QueryStats, QueryStream,
    QueryWorkload, QUERY_KINDS,
};
pub use scenario::{scenario, MixedRunResult, RunResult, Scenario, ScenarioRunner, WORKLOADS};

/// The standard workload families the sweeps use.
pub fn workload(name: &str, n: usize, seed: u64) -> Graph {
    match name {
        "star" => fg_graph::generators::star(n),
        "cycle" => fg_graph::generators::cycle(n),
        "grid" => {
            let side = (n as f64).sqrt().ceil() as usize;
            fg_graph::generators::grid(side, side.max(1))
        }
        "er" => fg_graph::generators::connected_erdos_renyi(n, 8.0 / n as f64, seed),
        "ba" => fg_graph::generators::barabasi_albert(n, 2, seed),
        other => panic!("unknown workload {other}"),
    }
}

/// Builds a Forgiving Graph over a named workload.
pub fn engine(name: &str, n: usize, seed: u64, policy: PlacementPolicy) -> ForgivingGraph {
    ForgivingGraph::from_graph_with_policy(&workload(name, n, seed), policy)
        .expect("workloads are tombstone-free")
}

/// `⌈log₂ n⌉`, the paper's stretch bound (narrowed from the shared
/// `fg_core::api::ceil_log2` definition).
pub fn ceil_log2(n: usize) -> u32 {
    fg_core::api::ceil_log2(n) as u32
}

/// `numerator / denominator`, or `0.0` when the denominator is not a
/// positive number — the one divide-by-zero guard every rate and
/// speedup in the harness shares (`events_per_sec`, `queries_per_sec_*`,
/// `speedup_*`, per-batch means). Centralized so no report path can emit
/// `inf`/`NaN` into a JSON artifact when a timed region is empty or
/// faster than the clock's resolution.
pub fn rate(numerator: f64, denominator: f64) -> f64 {
    if denominator > 0.0 {
        numerator / denominator
    } else {
        0.0
    }
}

/// The host's available parallelism (1 if unknown) — recorded into
/// every benchmark JSON artifact so results can be compared across
/// machines.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

//! Tiny shared CLI parsing for the experiment binaries.
//!
//! Every E-binary (and the throughput runner) accepts the same base flags
//! instead of hardcoded constants:
//!
//! * `--seed <u64>` — base RNG seed for workloads and adversaries;
//! * `--scale <f64>` — multiplies every size sweep (e.g. `--scale 4`
//!   turns the 64/256/1024 sweep into 256/1024/4096);
//! * `--json <path>` — additionally write the result tables as JSON;
//! * binary-specific `--name value` pairs, read via [`BenchArgs::get`].
//!
//! Parsing is deliberately minimal (no external crates — the container is
//! offline): flags are `--name value` pairs in any order.

use crate::json::Json;
use fg_metrics::Table;
use std::str::FromStr;

/// Parsed command-line flags for an experiment binary.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    flags: Vec<(String, String)>,
}

impl BenchArgs {
    /// Parses the process arguments.
    ///
    /// # Panics
    ///
    /// Panics (with usage context) on a flag without a value or a
    /// positional argument — every argument must be a `--name value` pair.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (tests).
    pub fn parse_from<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut flags = Vec::new();
        let mut iter = args.into_iter().map(Into::into);
        while let Some(arg) = iter.next() {
            let name = arg
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --flag, got {arg:?}"))
                .to_string();
            let value = iter
                .next()
                .unwrap_or_else(|| panic!("flag --{name} needs a value"));
            flags.push((name, value));
        }
        BenchArgs { flags }
    }

    /// The raw value of `--name`, if given (last occurrence wins).
    pub fn raw(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The parsed value of `--name`, or `default` when absent.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse as `T`.
    pub fn get<T: FromStr>(&self, name: &str, default: T) -> T {
        match self.raw(name) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{name} {v:?} is not a valid value")),
            None => default,
        }
    }

    /// The base seed (`--seed`), defaulting to the binary's historical
    /// constant.
    pub fn seed(&self, default: u64) -> u64 {
        self.get("seed", default)
    }

    /// Scales a size from a sweep by `--scale` (default 1.0), keeping a
    /// sane floor so tiny scales stay runnable.
    pub fn scale_n(&self, n: usize) -> usize {
        self.scale_with_floor(n, 8)
    }

    /// [`BenchArgs::scale_n`] with an explicit floor — for degree sweeps
    /// whose small entries are meaningful (e.g. E3's d = 4).
    pub fn scale_with_floor(&self, n: usize, floor: usize) -> usize {
        let scale: f64 = self.get("scale", 1.0);
        ((n as f64 * scale).round() as usize).max(floor)
    }

    /// The `--json` output path, if given.
    pub fn json_path(&self) -> Option<&str> {
        self.raw("json")
    }

    /// The executor width (`--threads`, default 1): how many shard
    /// workers the distributed backend runs its repair rounds on. Thread
    /// count never changes results (see `fg_dist`), only wall-clock.
    pub fn threads(&self) -> usize {
        self.get("threads", 1usize).max(1)
    }

    /// Prints every table as markdown and, when `--json` was given, writes
    /// them all to that path as a JSON array of
    /// `{title, headers, rows}` objects.
    pub fn emit(&self, tables: &[&Table]) {
        for table in tables {
            println!("{}", table.to_markdown());
        }
        if let Some(path) = self.json_path() {
            let doc = Json::Arr(tables.iter().map(|t| table_json(t)).collect());
            std::fs::write(path, doc.pretty())
                .unwrap_or_else(|e| panic!("writing --json {path:?}: {e}"));
            eprintln!("wrote {path}");
        }
    }
}

/// A [`Table`] as a JSON object.
pub fn table_json(table: &Table) -> Json {
    Json::obj()
        .field("title", Json::str(table.title()))
        .field(
            "headers",
            Json::Arr(table.headers().iter().map(Json::str).collect()),
        )
        .field(
            "rows",
            Json::Arr(
                table
                    .rows()
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(Json::str).collect()))
                    .collect(),
            ),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flag_pairs() {
        let args = BenchArgs::parse_from(["--seed", "9", "--scale", "0.5", "--json", "out.json"]);
        assert_eq!(args.seed(7), 9);
        assert_eq!(args.scale_n(64), 32);
        assert_eq!(args.json_path(), Some("out.json"));
        assert_eq!(args.get("threshold", 256usize), 256);
    }

    #[test]
    fn threads_defaults_to_one_and_clamps() {
        assert_eq!(BenchArgs::parse_from(Vec::<String>::new()).threads(), 1);
        assert_eq!(BenchArgs::parse_from(["--threads", "4"]).threads(), 4);
        assert_eq!(BenchArgs::parse_from(["--threads", "0"]).threads(), 1);
    }

    #[test]
    fn defaults_when_absent() {
        let args = BenchArgs::parse_from(Vec::<String>::new());
        assert_eq!(args.seed(7), 7);
        assert_eq!(args.scale_n(64), 64);
        assert_eq!(args.json_path(), None);
    }

    #[test]
    fn scale_keeps_floor() {
        let args = BenchArgs::parse_from(["--scale", "0.01"]);
        assert_eq!(args.scale_n(64), 8);
    }

    #[test]
    fn last_flag_wins() {
        let args = BenchArgs::parse_from(["--seed", "1", "--seed", "2"]);
        assert_eq!(args.seed(0), 2);
    }

    #[test]
    #[should_panic(expected = "needs a value")]
    fn missing_value_panics() {
        let _ = BenchArgs::parse_from(["--seed"]);
    }

    #[test]
    fn table_json_shape() {
        let mut t = Table::new("T", ["a", "b"]);
        t.push_row(["1", "2"]);
        let text = table_json(&t).pretty();
        assert!(text.contains("\"title\": \"T\""));
        assert!(text.contains("\"rows\""));
    }
}

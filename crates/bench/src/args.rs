//! Tiny shared CLI parsing for the experiment binaries.
//!
//! Every E-binary (and the throughput runner) accepts the same base flags
//! instead of hardcoded constants:
//!
//! * `--seed <u64>` — base RNG seed for workloads and adversaries;
//! * `--scale <f64>` — multiplies every size sweep (e.g. `--scale 4`
//!   turns the 64/256/1024 sweep into 256/1024/4096);
//! * `--json <path>` — additionally write the result tables as JSON;
//! * binary-specific `--name value` pairs, read via [`BenchArgs::get`].
//!
//! Parsing is deliberately minimal (no external crates — the container is
//! offline): flags are `--name value` pairs in any order.

use crate::json::Json;
use fg_metrics::Table;
use std::str::FromStr;

/// Parsed command-line flags for an experiment binary.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    flags: Vec<(String, String)>,
}

impl BenchArgs {
    /// Parses the process arguments.
    ///
    /// # Panics
    ///
    /// Panics (with usage context) on a flag without a value or a
    /// positional argument — every argument must be a `--name value` pair.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (tests).
    pub fn parse_from<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut flags = Vec::new();
        let mut iter = args.into_iter().map(Into::into);
        while let Some(arg) = iter.next() {
            let name = arg
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --flag, got {arg:?}"))
                .to_string();
            let value = iter
                .next()
                .unwrap_or_else(|| panic!("flag --{name} needs a value"));
            flags.push((name, value));
        }
        BenchArgs { flags }
    }

    /// The raw value of `--name`, if given (last occurrence wins).
    pub fn raw(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The parsed value of `--name`, or `default` when absent.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse as `T`.
    pub fn get<T: FromStr>(&self, name: &str, default: T) -> T {
        match self.raw(name) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{name} {v:?} is not a valid value")),
            None => default,
        }
    }

    /// The base seed (`--seed`), defaulting to the binary's historical
    /// constant.
    pub fn seed(&self, default: u64) -> u64 {
        self.get("seed", default)
    }

    /// Scales a size from a sweep by `--scale` (default 1.0), keeping a
    /// sane floor so tiny scales stay runnable.
    pub fn scale_n(&self, n: usize) -> usize {
        self.scale_with_floor(n, 8)
    }

    /// [`BenchArgs::scale_n`] with an explicit floor — for degree sweeps
    /// whose small entries are meaningful (e.g. E3's d = 4).
    pub fn scale_with_floor(&self, n: usize, floor: usize) -> usize {
        let scale: f64 = self.get("scale", 1.0);
        ((n as f64 * scale).round() as usize).max(floor)
    }

    /// The `--json` output path, if given.
    pub fn json_path(&self) -> Option<&str> {
        self.raw("json")
    }

    /// The executor width (`--threads`, default 1): how many shard
    /// workers the distributed backend runs its repair rounds on. Thread
    /// count never changes results (see `fg_dist`), only wall-clock.
    pub fn threads(&self) -> usize {
        self.get("threads", 1usize).max(1)
    }

    /// Total interleaved read queries (`--queries`, default 0 = a pure
    /// write run). E.g. `--events 50000 --queries 200000` is an 80/20
    /// read/write mix.
    pub fn queries(&self) -> usize {
        self.get("queries", 0usize)
    }

    /// The read-side seed (`--query-seed`), independent of `--seed` so
    /// query placement can be varied without changing the trace.
    pub fn query_seed(&self, default: u64) -> u64 {
        self.get("query-seed", default)
    }

    /// The mixed read/write workload, when `--queries` is positive:
    /// `--query-mix kind:weight,...` (kinds `dist`, `path`, `stretch`,
    /// `deg`, `comp`; default `dist:80,path:10,stretch:10`),
    /// `--query-seed` (default `default_seed`), `--query-hot` (sticky
    /// hot source set size, default 32, 0 = uniform sources),
    /// `--query-cache` (landmark vectors per graph side, default 128),
    /// and `--query-naive-every` (run the naive-baseline pass on every
    /// k-th block, default 8; 1 = every block).
    ///
    /// # Panics
    ///
    /// Panics (with the parse message) on a malformed `--query-mix`.
    pub fn query_workload(&self, default_seed: u64) -> Option<crate::QueryWorkload> {
        let queries = self.queries();
        (queries > 0).then(|| {
            let mut wl = crate::QueryWorkload::new(queries);
            if let Some(spec) = self.raw("query-mix") {
                wl.mix = crate::QueryMix::parse(spec)
                    .unwrap_or_else(|e| panic!("--query-mix {spec:?}: {e}"));
            }
            wl.seed = self.query_seed(default_seed);
            wl.hot = self.get("query-hot", wl.hot);
            wl.cache_capacity = self.get("query-cache", wl.cache_capacity).max(1);
            wl.naive_every = self.get("query-naive-every", wl.naive_every).max(1);
            wl
        })
    }

    /// Prints every table as markdown and, when `--json` was given, writes
    /// them all to that path as a JSON array of
    /// `{title, headers, rows}` objects.
    pub fn emit(&self, tables: &[&Table]) {
        for table in tables {
            println!("{}", table.to_markdown());
        }
        if let Some(path) = self.json_path() {
            let doc = Json::Arr(tables.iter().map(|t| table_json(t)).collect());
            std::fs::write(path, doc.pretty())
                .unwrap_or_else(|e| panic!("writing --json {path:?}: {e}"));
            eprintln!("wrote {path}");
        }
    }
}

/// A [`Table`] as a JSON object.
pub fn table_json(table: &Table) -> Json {
    Json::obj()
        .field("title", Json::str(table.title()))
        .field(
            "headers",
            Json::Arr(table.headers().iter().map(Json::str).collect()),
        )
        .field(
            "rows",
            Json::Arr(
                table
                    .rows()
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(Json::str).collect()))
                    .collect(),
            ),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flag_pairs() {
        let args = BenchArgs::parse_from(["--seed", "9", "--scale", "0.5", "--json", "out.json"]);
        assert_eq!(args.seed(7), 9);
        assert_eq!(args.scale_n(64), 32);
        assert_eq!(args.json_path(), Some("out.json"));
        assert_eq!(args.get("threshold", 256usize), 256);
    }

    #[test]
    fn threads_defaults_to_one_and_clamps() {
        assert_eq!(BenchArgs::parse_from(Vec::<String>::new()).threads(), 1);
        assert_eq!(BenchArgs::parse_from(["--threads", "4"]).threads(), 4);
        assert_eq!(BenchArgs::parse_from(["--threads", "0"]).threads(), 1);
    }

    #[test]
    fn defaults_when_absent() {
        let args = BenchArgs::parse_from(Vec::<String>::new());
        assert_eq!(args.seed(7), 7);
        assert_eq!(args.scale_n(64), 64);
        assert_eq!(args.json_path(), None);
    }

    #[test]
    fn scale_keeps_floor() {
        let args = BenchArgs::parse_from(["--scale", "0.01"]);
        assert_eq!(args.scale_n(64), 8);
    }

    #[test]
    fn last_flag_wins() {
        let args = BenchArgs::parse_from(["--seed", "1", "--seed", "2"]);
        assert_eq!(args.seed(0), 2);
    }

    #[test]
    #[should_panic(expected = "needs a value")]
    fn missing_value_panics() {
        let _ = BenchArgs::parse_from(["--seed"]);
    }

    #[test]
    fn table_json_shape() {
        let mut t = Table::new("T", ["a", "b"]);
        t.push_row(["1", "2"]);
        let text = table_json(&t).pretty();
        assert!(text.contains("\"title\": \"T\""));
        assert!(text.contains("\"rows\""));
    }
}

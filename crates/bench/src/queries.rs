//! Mixed read/write workloads: configurable query streams interleaved
//! with churn, answered through **four** read paths — the landmark
//! [`QueryCache`] over the live adjacency, the [`FrozenQueryCache`]
//! serving tier (image-only CSR publishes per batch, dense bitset BFS
//! memos, persistent ghost landmarks), the uncached `QueryOps` API
//! (bidirectional BFS), and the naive per-query-BFS baseline (a fresh
//! full single-source BFS per query, the pre-query-API way of reading
//! distances out of the offline sampler) — so every run measures both
//! speedups *and* differentially checks the paths against each other.
//!
//! The pieces:
//!
//! * [`QueryMix`] — a weighted mix spec (`"dist:80,path:10,stretch:10"`)
//!   over the [`QueryKind`]s the read API serves;
//! * [`QueryWorkload`] — how many queries to interleave, the mix, the
//!   seed, the hot-source skew and the cache capacity (wired through
//!   `--queries` / `--query-mix` / `--query-seed` / `--query-hot` /
//!   `--query-cache`);
//! * [`QueryStats`] — what a mixed run measured: queries/sec for all
//!   four paths, the speedups, cache behaviour counters and the
//!   (always zero) answer-mismatch count, serialised into the bench
//!   JSON next to the write-side throughput.
//!
//! Query endpoints are drawn from the live node set at each interleave
//! point: sources from a per-block *hot set* (read traffic concentrates
//! on popular nodes — the skew every distance-oracle serving layer
//! exploits), targets uniformly.

use crate::json::Json;
use fg_core::{CacheStats, FrozenQueryCache, GraphView, QueryCache, QueryOps};
use fg_graph::{Graph, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The query kinds a [`QueryMix`] can weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// `distance(u, v)` — shortest image hops.
    Distance,
    /// `path(u, v)` — a concrete shortest image path.
    Path,
    /// `stretch(u, v)` — image distance over `G'` distance.
    Stretch,
    /// `degree(u)` — image degree.
    Degree,
    /// `same_component(u, v)` — image reachability.
    Component,
}

/// Every kind, in spec order.
pub const QUERY_KINDS: &[QueryKind] = &[
    QueryKind::Distance,
    QueryKind::Path,
    QueryKind::Stretch,
    QueryKind::Degree,
    QueryKind::Component,
];

impl QueryKind {
    /// The spec token for this kind (`dist`, `path`, `stretch`, `deg`,
    /// `comp`).
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::Distance => "dist",
            QueryKind::Path => "path",
            QueryKind::Stretch => "stretch",
            QueryKind::Degree => "deg",
            QueryKind::Component => "comp",
        }
    }

    fn from_label(s: &str) -> Option<QueryKind> {
        QUERY_KINDS.iter().copied().find(|k| k.label() == s)
    }
}

/// A weighted mix over [`QueryKind`]s, parsed from specs like
/// `"dist:80,path:10,stretch:10"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryMix {
    /// `(kind, weight)` pairs with positive weights, in spec order.
    weights: Vec<(QueryKind, u32)>,
}

impl QueryMix {
    /// The default 80/10/10 distance-heavy read mix.
    pub fn default_mix() -> QueryMix {
        QueryMix::parse("dist:80,path:10,stretch:10").expect("default mix parses")
    }

    /// Parses a `kind:weight,kind:weight,...` spec. Kinds: `dist`,
    /// `path`, `stretch`, `deg`, `comp`. Weights are relative (they need
    /// not sum to 100); zero-weight entries are dropped.
    ///
    /// # Errors
    ///
    /// A human-readable message on unknown kinds, malformed entries,
    /// duplicate kinds, or an all-zero mix.
    pub fn parse(spec: &str) -> Result<QueryMix, String> {
        let mut weights: Vec<(QueryKind, u32)> = Vec::new();
        for entry in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (label, weight) = entry
                .split_once(':')
                .ok_or_else(|| format!("query-mix entry {entry:?} is not kind:weight"))?;
            let kind = QueryKind::from_label(label.trim()).ok_or_else(|| {
                format!(
                    "unknown query kind {label:?}; expected one of dist, path, stretch, deg, comp"
                )
            })?;
            let weight: u32 = weight
                .trim()
                .parse()
                .map_err(|_| format!("query-mix weight {weight:?} is not a number"))?;
            if weights.iter().any(|(k, _)| *k == kind) {
                return Err(format!("duplicate query kind {label:?}"));
            }
            if weight > 0 {
                weights.push((kind, weight));
            }
        }
        if weights.is_empty() {
            return Err(format!("query mix {spec:?} has no positive weights"));
        }
        Ok(QueryMix { weights })
    }

    /// The canonical spec string (`kind:weight,...`).
    pub fn spec(&self) -> String {
        self.weights
            .iter()
            .map(|(k, w)| format!("{}:{w}", k.label()))
            .collect::<Vec<_>>()
            .join(",")
    }

    fn total(&self) -> u64 {
        self.weights.iter().map(|(_, w)| u64::from(*w)).sum()
    }

    fn pick(&self, rng: &mut ChaCha8Rng) -> QueryKind {
        let mut roll = rng.gen_range(0..self.total());
        for (kind, w) in &self.weights {
            let w = u64::from(*w);
            if roll < w {
                return *kind;
            }
            roll -= w;
        }
        unreachable!("weights cover the range")
    }
}

/// A mixed read/write workload description for
/// [`ScenarioRunner::run_mixed`](crate::ScenarioRunner::run_mixed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryWorkload {
    /// Total queries interleaved across the trace (spread evenly over
    /// the write batches — e.g. 4× the event count is an 80/20
    /// read/write mix).
    pub queries: usize,
    /// The weighted kind mix.
    pub mix: QueryMix,
    /// Seed for the query stream (independent of the trace seed).
    pub seed: u64,
    /// Hot-source set size per interleave block; `0` draws sources
    /// uniformly instead.
    pub hot: usize,
    /// [`QueryCache`] capacity (distance vectors per graph side).
    pub cache_capacity: usize,
    /// Run the (expensive) naive-baseline pass on every `naive_every`-th
    /// interleave block. The cached and API passes always serve every
    /// query; the baseline is sampled so its full-BFS churn between
    /// write batches does not distort the write-side timings. `1`
    /// measures it on every block.
    pub naive_every: usize,
}

impl QueryWorkload {
    /// `queries` reads with the default mix, seed 1, a 32-source sticky
    /// hot set, a 128-vector cache, and the naive baseline sampled on
    /// every 8th block.
    pub fn new(queries: usize) -> QueryWorkload {
        QueryWorkload {
            queries,
            mix: QueryMix::default_mix(),
            seed: 1,
            hot: 32,
            cache_capacity: 128,
            naive_every: 8,
        }
    }
}

/// One generated query.
#[derive(Debug, Clone, Copy)]
pub struct Query {
    /// Which read op to issue.
    pub kind: QueryKind,
    /// The source endpoint (drawn from the hot set when one is active).
    pub u: NodeId,
    /// The target endpoint (uniform over the live nodes).
    pub v: NodeId,
}

/// The deterministic query generator: emits `(kind, source, target)`
/// triples with sources drawn from a *sticky* hot set — popularity is
/// persistent, the way real read traffic concentrates on the same nodes
/// across many writes. Hot nodes that die are replaced (seeded rng picks
/// from the live set); targets are uniform over the live nodes.
pub struct QueryStream {
    rng: ChaCha8Rng,
    mix: QueryMix,
    hot: usize,
    hot_set: Vec<NodeId>,
}

impl QueryStream {
    /// A stream over `wl`'s mix, seed and hot-set size.
    pub fn new(wl: &QueryWorkload) -> QueryStream {
        QueryStream {
            rng: ChaCha8Rng::seed_from_u64(wl.seed),
            mix: wl.mix.clone(),
            hot: wl.hot,
            hot_set: Vec::new(),
        }
    }

    /// Generates `count` queries against the current live node set.
    pub fn block(&mut self, image: &Graph, count: usize) -> Vec<Query> {
        let live: Vec<NodeId> = image.iter().collect();
        if live.is_empty() || count == 0 {
            return Vec::new();
        }
        let uniform_sources = self.hot == 0 || self.hot >= live.len();
        if !uniform_sources {
            // Sticky popularity: keep surviving hot nodes, replace the
            // dead ones.
            self.hot_set.retain(|v| image.contains(*v));
            let mut guard = 0;
            while self.hot_set.len() < self.hot && guard < 20 * self.hot + 20 {
                guard += 1;
                let v = live[self.rng.gen_range(0..live.len())];
                if !self.hot_set.contains(&v) {
                    self.hot_set.push(v);
                }
            }
        }
        let sources: &[NodeId] = if uniform_sources {
            &live
        } else {
            &self.hot_set
        };
        (0..count)
            .map(|_| Query {
                kind: self.mix.pick(&mut self.rng),
                u: sources[self.rng.gen_range(0..sources.len())],
                v: live[self.rng.gen_range(0..live.len())],
            })
            .collect()
    }
}

/// One query's answer — held so the cached and naive passes can be
/// compared after both are timed.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// A [`QueryKind::Distance`] answer.
    Dist(Option<u32>),
    /// A [`QueryKind::Path`] answer.
    Path(Option<Vec<NodeId>>),
    /// A [`QueryKind::Stretch`] answer.
    Stretch(Option<f64>),
    /// A [`QueryKind::Degree`] answer.
    Degree(Option<usize>),
    /// A [`QueryKind::Component`] answer.
    Component(bool),
}

impl Answer {
    /// Whether the query produced a usable answer (reachable pair, live
    /// node).
    pub fn answered(&self) -> bool {
        match self {
            Answer::Dist(d) => d.is_some(),
            Answer::Path(p) => p.is_some(),
            Answer::Stretch(s) => s.is_some(),
            Answer::Degree(d) => d.is_some(),
            Answer::Component(c) => *c,
        }
    }
}

pub(crate) fn answer_cached(cache: &mut QueryCache, view: &impl GraphView, q: &Query) -> Answer {
    match q.kind {
        QueryKind::Distance => Answer::Dist(cache.distance(view, q.u, q.v)),
        QueryKind::Path => Answer::Path(cache.path(view, q.u, q.v)),
        QueryKind::Stretch => Answer::Stretch(cache.stretch(view, q.u, q.v)),
        QueryKind::Degree => Answer::Degree(view.degree(q.u)),
        QueryKind::Component => Answer::Component(cache.same_component(view, q.u, q.v)),
    }
}

/// The frozen read path: the dedicated [`FrozenQueryCache`] serving
/// tier, answering entirely from its published epoch snapshot — dense
/// per-epoch image memos over the bitset CSR kernels plus persistent
/// ghost landmarks, never touching the live adjacency. Scalar answers
/// (distance, stretch, degree, component) equal [`answer_cached`]'s
/// exactly; paths are equally short and walk real edges but may pick
/// different nodes (the tier's resident landmark set differs from the
/// live cache's, so gradient descent can start from a different
/// source).
pub(crate) fn answer_frozen(tier: &mut FrozenQueryCache, q: &Query) -> Answer {
    match q.kind {
        QueryKind::Distance => Answer::Dist(tier.distance(q.u, q.v)),
        QueryKind::Path => Answer::Path(tier.path(q.u, q.v)),
        QueryKind::Stretch => Answer::Stretch(tier.stretch(q.u, q.v)),
        QueryKind::Degree => Answer::Degree(tier.degree(q.u)),
        QueryKind::Component => Answer::Component(tier.same_component(q.u, q.v)),
    }
}

/// The uncached query API: `QueryOps` per-pair reads (bidirectional BFS,
/// no landmark state). The middle tier of the three measured read paths,
/// and the in-process reference the served (`fg-serve`) differential
/// harnesses compare against.
pub fn answer_api(view: &impl GraphView, q: &Query) -> Answer {
    match q.kind {
        QueryKind::Distance => Answer::Dist(view.distance(q.u, q.v)),
        QueryKind::Path => Answer::Path(view.path(q.u, q.v)),
        QueryKind::Stretch => Answer::Stretch(view.stretch(q.u, q.v)),
        QueryKind::Degree => Answer::Degree(view.degree(q.u)),
        QueryKind::Component => Answer::Component(view.same_component(q.u, q.v)),
    }
}

/// The naive per-query-BFS baseline: what answering reads cost before
/// the query API existed — reach into the offline sampler's machinery
/// and run one fresh full single-source BFS (`bfs_distances` /
/// `bfs_parents`) per query, exactly the way `fg_metrics`' stretch
/// sampler materializes distances.
pub(crate) fn answer_naive(view: &impl GraphView, q: &Query) -> Answer {
    use fg_graph::traversal::{bfs_distances, bfs_parents};
    let image = view.image();
    match q.kind {
        QueryKind::Distance => Answer::Dist(bfs_distances(image, q.u)[q.v.index()]),
        QueryKind::Path => {
            let parents = bfs_parents(image, q.u);
            let mut path = vec![q.v];
            let mut cur = q.v;
            loop {
                match parents.get(cur.index()).copied().flatten() {
                    Some(p) if p == cur => break, // reached the root (u)
                    Some(p) => {
                        path.push(p);
                        cur = p;
                    }
                    None => return Answer::Path(None),
                }
            }
            path.reverse();
            Answer::Path(Some(path))
        }
        QueryKind::Stretch => {
            if !image.contains(q.u) || !image.contains(q.v) {
                return Answer::Stretch(None);
            }
            let di = bfs_distances(image, q.u)[q.v.index()];
            // `.get`: lazy-ghost baselines may track a smaller universe.
            let dg = bfs_distances(view.ghost(), q.u)
                .get(q.v.index())
                .copied()
                .flatten();
            Answer::Stretch(fg_core::stretch_ratio(dg, di))
        }
        QueryKind::Degree => Answer::Degree(view.degree(q.u)),
        QueryKind::Component => Answer::Component(bfs_distances(image, q.u)[q.v.index()].is_some()),
    }
}

/// Whether two read paths' answers agree. Shortest paths need not be
/// node-identical — they must exist iff the other does, be equally
/// short, connect the right endpoints, and walk real image edges (both
/// sides are validated).
pub fn answers_agree(q: &Query, a: &Answer, b: &Answer, image: &Graph) -> bool {
    fn valid_path(q: &Query, p: &[NodeId], image: &Graph) -> bool {
        p.first() == Some(&q.u)
            && p.last() == Some(&q.v)
            && (p.len() == 1 || p.windows(2).all(|e| image.has_edge(e[0], e[1])))
    }
    match (a, b) {
        (Answer::Path(a), Answer::Path(b)) => match (a, b) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                a.len() == b.len() && valid_path(q, a, image) && valid_path(q, b, image)
            }
            _ => false,
        },
        (a, b) => a == b,
    }
}

/// What one mixed read/write run measured on the read side.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryStats {
    /// Queries actually issued (0 when the trace emptied the network).
    pub queries: usize,
    /// The canonical mix spec.
    pub mix: String,
    /// The stream seed.
    pub seed: u64,
    /// Hot-source set size (0 = uniform sources).
    pub hot: usize,
    /// Cache capacity (vectors per side).
    pub cache_capacity: usize,
    /// Issued queries per kind, in [`QUERY_KINDS`] order.
    pub by_kind: Vec<(&'static str, usize)>,
    /// Queries whose answer was `None`/unreachable.
    pub unanswered: usize,
    /// Queries the sampled naive-baseline pass answered (`naive_qps` is
    /// measured over these).
    pub naive_queries: usize,
    /// Answers that disagreed across the three read paths — **always
    /// zero**; recorded (and gated in CI) rather than assumed.
    pub mismatches: usize,
    /// Wall-clock seconds answering through the landmark cache
    /// (including its misses and in-pass BFS rebuilds; maintenance is
    /// accounted separately in [`QueryStats::maintain_seconds`]).
    pub cached_seconds: f64,
    /// Wall-clock seconds spent maintaining the cache from the write
    /// batches' typed outcomes (`note_batch`: invalidation folds and
    /// relaxation repairs) — the cached path's write-side cost, charged
    /// to `cached_qps` so the speedups reflect the full price of
    /// serving cached.
    pub maintain_seconds: f64,
    /// Wall-clock seconds answering through the uncached `QueryOps` API
    /// (per-query bidirectional BFS).
    pub api_seconds: f64,
    /// Wall-clock seconds answering by the naive baseline: one fresh
    /// full single-source BFS per query — what reads cost before the
    /// query API existed (the offline sampler's machinery).
    pub naive_seconds: f64,
    /// Wall-clock seconds publishing the per-batch epoch snapshots
    /// ([`FrozenQueryCache::publish`]: an image-only CSR copy — the
    /// frozen path's analogue of an index rebuild; the ghost is never
    /// re-frozen).
    pub freeze_seconds: f64,
    /// Wall-clock seconds maintaining the frozen tier's persistent
    /// ghost state from the write batches' typed outcomes
    /// ([`FrozenQueryCache::note_batch`]: adjacency extension plus
    /// in-place landmark relaxation) — the frozen analogue of
    /// [`QueryStats::maintain_seconds`].
    pub frozen_maintain_seconds: f64,
    /// Wall-clock seconds answering through the frozen serving tier.
    pub frozen_seconds: f64,
    /// `queries / (cached_seconds + maintain_seconds)` — cached serving
    /// throughput inclusive of cache maintenance.
    pub cached_qps: f64,
    /// `queries / (frozen_seconds + freeze_seconds +
    /// frozen_maintain_seconds)` — frozen serving throughput inclusive of
    /// snapshot builds and cache maintenance, so it is directly
    /// comparable to [`QueryStats::cached_qps`].
    pub frozen_qps: f64,
    /// `frozen_qps / cached_qps` — what the CSR layout and bitset
    /// kernels buy over the same cache on the live adjacency.
    pub speedup_frozen_vs_cached: f64,
    /// What the frozen serving tier did. Its profile differs from
    /// [`QueryStats::cache`] by design: per-epoch image memos re-miss
    /// each batch's hot sources (cheap dense BFS) instead of paying
    /// invalidation drops, while the persistent ghost landmarks almost
    /// never miss — so `dropped` is always zero and `repaired` counts
    /// only ghost relaxations.
    pub frozen_cache: CacheStats,
    /// `queries / api_seconds`.
    pub api_qps: f64,
    /// `queries / naive_seconds`.
    pub naive_qps: f64,
    /// `cached_qps / naive_qps` — the landmark cache against the naive
    /// per-query-BFS baseline.
    pub speedup: f64,
    /// `cached_qps / api_qps` — what the cache adds on top of the
    /// already-bidirectional uncached API.
    pub speedup_vs_api: f64,
    /// What the cache did (hits, misses, in-place repairs, drops,
    /// evictions, flushes).
    pub cache: CacheStats,
}

impl QueryStats {
    /// The stats as a JSON object for `BENCH_*.json` reports.
    pub fn to_json(&self) -> Json {
        let mut kinds = Json::obj();
        for (label, count) in &self.by_kind {
            kinds = kinds.field(*label, Json::Int(*count as i64));
        }
        Json::obj()
            .field("queries", Json::Int(self.queries as i64))
            .field("mix", Json::str(&self.mix))
            .field("seed", Json::Int(self.seed as i64))
            .field("hot", Json::Int(self.hot as i64))
            .field("cache_capacity", Json::Int(self.cache_capacity as i64))
            .field("by_kind", kinds)
            .field("unanswered", Json::Int(self.unanswered as i64))
            .field("naive_queries", Json::Int(self.naive_queries as i64))
            .field("mismatches", Json::Int(self.mismatches as i64))
            .field("cached_seconds", Json::Float(self.cached_seconds))
            .field("maintain_seconds", Json::Float(self.maintain_seconds))
            .field("freeze_seconds", Json::Float(self.freeze_seconds))
            .field(
                "frozen_maintain_seconds",
                Json::Float(self.frozen_maintain_seconds),
            )
            .field("frozen_seconds", Json::Float(self.frozen_seconds))
            .field("api_seconds", Json::Float(self.api_seconds))
            .field("naive_seconds", Json::Float(self.naive_seconds))
            .field("queries_per_sec_cached", Json::Float(self.cached_qps))
            .field("queries_per_sec_frozen", Json::Float(self.frozen_qps))
            .field("queries_per_sec_api", Json::Float(self.api_qps))
            .field("queries_per_sec_naive", Json::Float(self.naive_qps))
            .field("speedup_vs_naive", Json::Float(self.speedup))
            .field("speedup_vs_api", Json::Float(self.speedup_vs_api))
            .field(
                "speedup_frozen_vs_cached",
                Json::Float(self.speedup_frozen_vs_cached),
            )
            .field("cache_hits", Json::Int(self.cache.hits as i64))
            .field("cache_misses", Json::Int(self.cache.misses as i64))
            .field("cache_repaired", Json::Int(self.cache.repaired as i64))
            .field("cache_dropped", Json::Int(self.cache.dropped as i64))
            .field("cache_evicted", Json::Int(self.cache.evicted as i64))
            .field("cache_flushes", Json::Int(self.cache.flushes as i64))
            .field(
                "frozen_cache_hits",
                Json::Int(self.frozen_cache.hits as i64),
            )
            .field(
                "frozen_cache_misses",
                Json::Int(self.frozen_cache.misses as i64),
            )
            .field(
                "frozen_cache_repaired",
                Json::Int(self.frozen_cache.repaired as i64),
            )
            .field(
                "frozen_cache_evicted",
                Json::Int(self.frozen_cache.evicted as i64),
            )
            .field(
                "frozen_cache_flushes",
                Json::Int(self.frozen_cache.flushes as i64),
            )
    }

    /// Folds one answered block into the tallies.
    pub(crate) fn record(&mut self, q: &Query, answered: bool, agreed: bool) {
        self.queries += 1;
        if let Some(slot) = self.by_kind.iter_mut().find(|(l, _)| *l == q.kind.label()) {
            slot.1 += 1;
        }
        if !answered {
            self.unanswered += 1;
        }
        if !agreed {
            self.mismatches += 1;
        }
    }

    pub(crate) fn empty(wl: &QueryWorkload) -> QueryStats {
        QueryStats {
            queries: 0,
            mix: wl.mix.spec(),
            seed: wl.seed,
            hot: wl.hot,
            cache_capacity: wl.cache_capacity,
            by_kind: QUERY_KINDS.iter().map(|k| (k.label(), 0)).collect(),
            unanswered: 0,
            naive_queries: 0,
            mismatches: 0,
            cached_seconds: 0.0,
            maintain_seconds: 0.0,
            freeze_seconds: 0.0,
            frozen_maintain_seconds: 0.0,
            frozen_seconds: 0.0,
            api_seconds: 0.0,
            naive_seconds: 0.0,
            cached_qps: 0.0,
            frozen_qps: 0.0,
            speedup_frozen_vs_cached: 0.0,
            api_qps: 0.0,
            naive_qps: 0.0,
            speedup: 0.0,
            speedup_vs_api: 0.0,
            cache: CacheStats::default(),
            frozen_cache: CacheStats::default(),
        }
    }

    pub(crate) fn finish(&mut self, cache: &QueryCache, frozen: &FrozenQueryCache) {
        self.cache = cache.stats();
        self.frozen_cache = frozen.stats();
        let queries = self.queries as f64;
        self.cached_qps = crate::rate(queries, self.cached_seconds + self.maintain_seconds);
        self.frozen_qps = crate::rate(
            queries,
            self.frozen_seconds + self.freeze_seconds + self.frozen_maintain_seconds,
        );
        self.api_qps = crate::rate(queries, self.api_seconds);
        self.naive_qps = crate::rate(self.naive_queries as f64, self.naive_seconds);
        self.speedup = crate::rate(self.cached_qps, self.naive_qps);
        self.speedup_vs_api = crate::rate(self.cached_qps, self.api_qps);
        self.speedup_frozen_vs_cached = crate::rate(self.frozen_qps, self.cached_qps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_parses_and_canonicalizes() {
        let mix = QueryMix::parse("dist:80, path:10 ,stretch:10").unwrap();
        assert_eq!(mix.spec(), "dist:80,path:10,stretch:10");
        assert_eq!(QueryMix::default_mix(), mix);
        let all = QueryMix::parse("dist:1,path:1,stretch:1,deg:1,comp:1").unwrap();
        assert_eq!(all.total(), 5);
        // Zero weights are dropped.
        let lean = QueryMix::parse("dist:5,path:0").unwrap();
        assert_eq!(lean.spec(), "dist:5");
    }

    #[test]
    fn bad_mixes_are_rejected() {
        assert!(QueryMix::parse("").is_err());
        assert!(QueryMix::parse("dist").is_err());
        assert!(QueryMix::parse("teleport:5").is_err());
        assert!(QueryMix::parse("dist:x").is_err());
        assert!(QueryMix::parse("dist:1,dist:2").is_err());
        assert!(QueryMix::parse("dist:0").is_err());
    }

    #[test]
    fn mix_picks_follow_the_weights() {
        let mix = QueryMix::parse("dist:99,comp:1").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let dists = (0..500)
            .filter(|_| mix.pick(&mut rng) == QueryKind::Distance)
            .count();
        assert!(dists > 450, "got {dists}/500 dist picks");
    }

    #[test]
    fn stream_is_deterministic_and_respects_hot_set() {
        let g = fg_graph::generators::cycle(32);
        let wl = QueryWorkload::new(100);
        let a = QueryStream::new(&wl).block(&g, 50);
        let b = QueryStream::new(&wl).block(&g, 50);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.kind, x.u, x.v), (y.kind, y.u, y.v));
        }
        let mut hot_wl = QueryWorkload::new(100);
        hot_wl.hot = 4;
        let block = QueryStream::new(&hot_wl).block(&g, 200);
        let mut sources: Vec<NodeId> = block.iter().map(|q| q.u).collect();
        sources.sort_unstable();
        sources.dedup();
        assert!(sources.len() <= 4, "hot set leaked: {sources:?}");
    }

    #[test]
    fn query_stats_json_shape() {
        let wl = QueryWorkload::new(10);
        let mut stats = QueryStats::empty(&wl);
        stats.finish(&QueryCache::new(4), &FrozenQueryCache::new(4));
        let text = stats.to_json().pretty();
        assert!(text.contains("\"queries_per_sec_cached\""));
        assert!(text.contains("\"queries_per_sec_frozen\""));
        assert!(text.contains("\"mix\": \"dist:80,path:10,stretch:10\""));
        assert!(text.contains("\"mismatches\": 0"));
    }
}

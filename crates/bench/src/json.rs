//! A minimal JSON value model and pretty-printer.
//!
//! The workspace's `serde` is an offline no-op stub (DESIGN.md §6), so the
//! machine-readable `BENCH_*.json` artifacts are produced by this small
//! hand-rolled writer instead. It covers exactly what benchmark reports
//! need: objects with ordered keys, arrays, strings, integers and floats.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (rendered without a decimal point).
    Int(i64),
    /// A float (rendered with enough precision to round-trip; non-finite
    /// values degrade to `null` per JSON's grammar).
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str<S: Into<String>>(s: S) -> Json {
        Json::Str(s.into())
    }

    /// An empty object to push fields onto.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object (panics on non-objects — builder
    /// misuse, not data-dependent).
    pub fn field<S: Into<String>>(mut self, key: S, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.into(), value)),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Json {
    fn render(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) if f.is_finite() => out.push_str(&format!("{f}")),
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => escape(s, out),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.render(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    escape(key, out);
                    out.push_str(": ");
                    value.render(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Json::obj()
            .field("name", Json::str("churn"))
            .field("events", Json::Int(50000))
            .field("eps", Json::Float(1234.5))
            .field("ok", Json::Bool(true))
            .field("tags", Json::Arr(vec![Json::str("a"), Json::str("b")]))
            .field("empty", Json::Arr(vec![]));
        let text = v.pretty();
        assert!(text.contains("\"events\": 50000"));
        assert!(text.contains("\"eps\": 1234.5"));
        assert!(text.contains("\"tags\": [\n"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let v = Json::str("a\"b\\c\nd");
        assert_eq!(v.pretty(), "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    #[should_panic(expected = "field() on non-object")]
    fn field_on_scalar_panics() {
        let _ = Json::Int(1).field("x", Json::Null);
    }
}

//! A minimal JSON value model, pretty-printer, and parser.
//!
//! The workspace's `serde` is an offline no-op stub (DESIGN.md §6), so the
//! machine-readable `BENCH_*.json` artifacts are produced by this small
//! hand-rolled writer instead. It covers exactly what benchmark reports
//! need: objects with ordered keys, arrays, strings, integers and floats.
//! The companion [`Json::parse`] reads the same grammar back, so every
//! emitted artifact can be round-trip-tested for parseability.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (rendered without a decimal point).
    Int(i64),
    /// A float (rendered with enough precision to round-trip; non-finite
    /// values degrade to `null` per JSON's grammar).
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str<S: Into<String>>(s: S) -> Json {
        Json::Str(s.into())
    }

    /// An empty object to push fields onto.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object (panics on non-objects — builder
    /// misuse, not data-dependent).
    pub fn field<S: Into<String>>(mut self, key: S, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.into(), value)),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line (for line-oriented outputs that are
    /// grepped or tailed, e.g. `replay_trace`'s result line).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.render_compact(&mut out);
        out
    }

    fn render_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.render_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    escape(key, out);
                    out.push_str(": ");
                    value.render_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.render(out, 0),
        }
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Json {
    fn render(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            // Integral floats keep an explicit `.0` so consumers (and a
            // round-trip through `parse`) see a float, not an integer
            // that silently changed type between runs whose timings
            // happened to land on a whole number.
            Json::Float(f) if f.is_finite() && f.fract() == 0.0 => {
                out.push_str(&format!("{f:.1}"));
            }
            Json::Float(f) if f.is_finite() => out.push_str(&format!("{f}")),
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => escape(s, out),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.render(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    escape(key, out);
                    out.push_str(": ");
                    value.render(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

impl Json {
    /// Parses a JSON document (the grammar [`Json::pretty`] emits plus
    /// arbitrary whitespace). Numbers with a `.`, `e` or `E` become
    /// [`Json::Float`], all others [`Json::Int`].
    ///
    /// # Errors
    ///
    /// A human-readable message naming the byte offset of the first
    /// syntax error, unconsumed trailing input included.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    /// Looks up a field of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b' ' | b'\t' | b'\n' | b'\r') = bytes.get(*pos) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", want as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(format!("expected a JSON value at byte {}", *pos)),
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    let mut float = false;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number bytes");
    if float {
        text.parse()
            .map(Json::Float)
            .map_err(|e| format!("bad float {text:?} at byte {start}: {e}"))
    } else {
        text.parse()
            .map(Json::Int)
            .map_err(|e| format!("bad integer {text:?} at byte {start}: {e}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(
                            char::from_u32(hex)
                                .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?,
                        );
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let c = rest.chars().next().expect("non-empty remainder");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Json::obj()
            .field("name", Json::str("churn"))
            .field("events", Json::Int(50000))
            .field("eps", Json::Float(1234.5))
            .field("ok", Json::Bool(true))
            .field("tags", Json::Arr(vec![Json::str("a"), Json::str("b")]))
            .field("empty", Json::Arr(vec![]));
        let text = v.pretty();
        assert!(text.contains("\"events\": 50000"));
        assert!(text.contains("\"eps\": 1234.5"));
        assert!(text.contains("\"tags\": [\n"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let v = Json::str("a\"b\\c\nd");
        assert_eq!(v.pretty(), "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    #[should_panic(expected = "field() on non-object")]
    fn field_on_scalar_panics() {
        let _ = Json::Int(1).field("x", Json::Null);
    }

    #[test]
    fn floats_emit_stably_and_non_finite_degrades_to_null() {
        // Integral floats keep an explicit `.0` — the field stays a
        // float across runs whose value happens to be whole.
        assert_eq!(Json::Float(2.0).pretty(), "2.0\n");
        assert_eq!(Json::Float(-0.0).pretty(), "-0.0\n");
        assert_eq!(Json::Float(1234.5).pretty(), "1234.5\n");
        assert_eq!(Json::Float(1e6).pretty(), "1000000.0\n");
        // JSON has no non-finite literals: they degrade to null rather
        // than emitting `NaN`/`inf` that no parser accepts.
        assert_eq!(Json::Float(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::Float(f64::INFINITY).pretty(), "null\n");
        assert_eq!(Json::Float(f64::NEG_INFINITY).pretty(), "null\n");
    }

    #[test]
    fn parse_round_trips_what_pretty_emits() {
        let v = Json::obj()
            .field("name", Json::str("churn — \"fast\"\npath\\grid"))
            .field("events", Json::Int(50000))
            .field("neg", Json::Int(-3))
            .field("eps", Json::Float(1234.5))
            .field("whole", Json::Float(2.0))
            .field("tiny", Json::Float(1.5e-9))
            .field("nan", Json::Float(f64::NAN))
            .field("ok", Json::Bool(true))
            .field("off", Json::Bool(false))
            .field("nothing", Json::Null)
            .field("tags", Json::Arr(vec![Json::str("a"), Json::Int(1)]))
            .field("empty_arr", Json::Arr(vec![]))
            .field("empty_obj", Json::obj())
            .field(
                "nested",
                Json::obj().field("inner", Json::Arr(vec![Json::obj()])),
            );
        let text = v.pretty();
        let back = Json::parse(&text).expect("own output must parse");
        // NaN rendered as null, so compare against the null-for-NaN form.
        let mut expected = v;
        if let Json::Obj(fields) = &mut expected {
            fields.iter_mut().find(|(k, _)| k == "nan").unwrap().1 = Json::Null;
        }
        assert_eq!(back, expected);
        // And printing the parse is a fixpoint.
        assert_eq!(back.pretty(), text);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("NaN").is_err());
    }

    #[test]
    fn parse_distinguishes_ints_from_floats() {
        let v = Json::parse("[1, 1.0, -2, 6.5e3]").unwrap();
        assert_eq!(
            v,
            Json::Arr(vec![
                Json::Int(1),
                Json::Float(1.0),
                Json::Int(-2),
                Json::Float(6500.0),
            ])
        );
    }
}

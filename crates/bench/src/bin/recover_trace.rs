//! Crash-injection recovery benchmark: replays a dumped scenario trace
//! through a [`DurableHealer`], injures the WAL the way a crash would,
//! recovers, completes the trace, and **exits nonzero unless the
//! digest stream matches the golden record exactly** — the CI gate that
//! recovery reaches the same state a crash-free run would have.
//!
//! Usage: `recover_trace <trace-file> [flags]`
//!
//! Flags:
//! * `--store <dir>` — store directory (default: a fresh temp dir;
//!   always recreated).
//! * `--checkpoint-every <k>` — checkpoint cadence while building
//!   (default 0 = only the initial checkpoint).
//! * `--sync-every <k>` — group-commit width (default 64; the build
//!   phase ends with an explicit sync either way).
//! * `--inject none|truncate|bitflip` — the injury (default `none`):
//!   `truncate` cuts the live WAL segment at a byte offset, `bitflip`
//!   flips one bit in its torn tail region.
//! * `--inject-at <byte>` — offset for the injection (default: 2/3 of
//!   the segment for `truncate`, 3 bytes before the end for `bitflip`).
//! * `--expect-digest <path>` — the golden digest file. Events replayed
//!   from the WAL are digest-verified by recovery itself; the events the
//!   injury destroyed are re-applied and each outcome is compared
//!   against the golden stream.
//! * `--json <path>` — also write the recovery-time artifact to a file
//!   (the same JSON always prints to stdout as one line).
//!
//! Unknown flags are an error (a misspelled gate must not pass
//! vacuously). Exit status: 0 = recovered and certified, 1 = recovery
//! refused or store construction failed, 2 = digest drift against the
//! golden record.

use fg_bench::json::Json;
use fg_bench::replay::parse_digest_file;
use fg_bench::Scenario;
use fg_core::{ForgivingGraph, SelfHealer};
use fg_store::{DurableHealer, DurableOptions};
use std::time::Instant;

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut flags: Vec<(String, String)> = Vec::new();
    const KNOWN: &[&str] = &[
        "store",
        "checkpoint-every",
        "sync-every",
        "inject",
        "inject-at",
        "expect-digest",
        "json",
    ];
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            assert!(
                KNOWN.contains(&name),
                "unknown flag --{name}; known: {KNOWN:?}"
            );
            let value = iter
                .next()
                .unwrap_or_else(|| panic!("flag --{name} needs a value"));
            flags.push((name.to_string(), value));
        } else {
            positional.push(arg);
        }
    }
    let flag = |name: &str| {
        flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    let path = positional
        .first()
        .cloned()
        .expect("usage: recover_trace <trace-file> [--inject truncate] [--expect-digest f]");
    let store_dir = flag("store").map_or_else(
        || std::env::temp_dir().join(format!("fg-recover-{}", std::process::id())),
        std::path::PathBuf::from,
    );
    let checkpoint_every: u64 = flag("checkpoint-every")
        .map_or(0, |v| v.parse().expect("--checkpoint-every takes a count"));
    let sync_every: usize =
        flag("sync-every").map_or(64, |v| v.parse().expect("--sync-every takes a count"));
    let inject = flag("inject").unwrap_or("none");
    assert!(
        ["none", "truncate", "bitflip"].contains(&inject),
        "--inject supports exactly: none, truncate, bitflip"
    );
    let opts = DurableOptions {
        checkpoint_every: (checkpoint_every > 0).then_some(checkpoint_every),
        sync_every: sync_every.max(1),
    };

    let text = std::fs::read_to_string(&path).expect("readable trace file");
    let sc = Scenario::read_trace(&path, &text);
    let golden = flag("expect-digest").map(|p| {
        let digests = parse_digest_file(&std::fs::read_to_string(p).expect("readable digest file"));
        assert_eq!(
            digests.len(),
            sc.events.len(),
            "{p}: digest count must equal trace length"
        );
        (p.to_string(), digests)
    });

    // Phase 1 — build: run the full trace through a durable engine, the
    // way a live service would have, then "crash" (drop the writer).
    let _ = std::fs::remove_dir_all(&store_dir);
    let engine = ForgivingGraph::from_graph(&sc.initial).expect("fresh G0");
    let base_epoch = engine.epoch();
    let start = Instant::now();
    let mut durable = match DurableHealer::create(engine, &store_dir, opts) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("store creation failed: {e}");
            std::process::exit(1);
        }
    };
    let mut build_digests = Vec::with_capacity(sc.events.len());
    for event in &sc.events {
        let outcome = durable.apply_event(event).expect("legal trace event");
        build_digests.push(outcome.digest());
    }
    durable.sync().expect("final sync");
    let snapshot_seq = durable.snapshot_seq();
    drop(durable);
    let build_seconds = start.elapsed().as_secs_f64();

    // The build itself must already match the golden stream — otherwise
    // a "successful" recovery would certify the wrong history.
    if let Some((name, digests)) = &golden {
        if let Some(i) = (0..digests.len()).find(|&i| digests[i] != build_digests[i]) {
            eprintln!(
                "digest drift at event {i} during the build: recorded {:016x}, \
                 engine produced {:016x} ({name})",
                digests[i], build_digests[i]
            );
            std::process::exit(2);
        }
    }

    // Phase 2 — injure the live WAL segment like a crash would.
    let wal = fg_store::wal_path(&store_dir, snapshot_seq);
    let wal_bytes = std::fs::read(&wal).expect("live segment").len();
    let inject_at: usize = flag("inject-at").map_or_else(
        || match inject {
            "truncate" => wal_bytes * 2 / 3,
            "bitflip" => wal_bytes.saturating_sub(3),
            _ => 0,
        },
        |v| v.parse().expect("--inject-at takes a byte offset"),
    );
    match inject {
        "truncate" => {
            let mut bytes = std::fs::read(&wal).expect("live segment");
            bytes.truncate(inject_at.min(bytes.len()));
            std::fs::write(&wal, bytes).expect("injected truncation");
        }
        "bitflip" => {
            let mut bytes = std::fs::read(&wal).expect("live segment");
            assert!(!bytes.is_empty(), "cannot bit-flip an empty segment");
            let at = inject_at.min(bytes.len() - 1);
            bytes[at] ^= 0x01;
            std::fs::write(&wal, bytes).expect("injected bit flip");
        }
        _ => {}
    }

    // Phase 3 — recover (the timed region CI tracks) and complete the
    // trace, certifying every re-applied event against the golden
    // stream.
    let start = Instant::now();
    let (mut recovered, report) = match DurableHealer::<ForgivingGraph>::open(&store_dir, opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("recovery refused: {e}");
            std::process::exit(1);
        }
    };
    let recovery_seconds = start.elapsed().as_secs_f64();

    let survived = (report.epoch - base_epoch) as usize;
    let start = Instant::now();
    for (i, event) in sc.events.iter().enumerate().skip(survived) {
        let outcome = recovered.apply_event(event).expect("legal trace event");
        let digest = outcome.digest();
        if digest != build_digests[i] {
            eprintln!(
                "digest drift at event {i} after recovery: crash-free run produced \
                 {:016x}, recovered run produced {digest:016x}",
                build_digests[i]
            );
            std::process::exit(2);
        }
    }
    let completion_seconds = start.elapsed().as_secs_f64();
    recovered.sync().expect("final sync");

    let report_json = Json::obj()
        .field("bench", Json::str("recover_trace"))
        .field("trace", Json::str(&path))
        .field("events", Json::Int(sc.events.len() as i64))
        .field("host_cpus", Json::Int(fg_bench::host_cpus() as i64))
        .field("checkpoint_every", Json::Int(checkpoint_every as i64))
        .field("sync_every", Json::Int(sync_every as i64))
        .field("wal_bytes", Json::Int(wal_bytes as i64))
        .field(
            "inject",
            Json::obj()
                .field("mode", Json::str(inject))
                .field("at", Json::Int(inject_at as i64)),
        )
        .field("build_wall_seconds", Json::Float(build_seconds))
        .field(
            "recovery",
            Json::obj()
                .field("wall_seconds", Json::Float(recovery_seconds))
                .field("snapshot_seq", Json::Int(report.snapshot_seq as i64))
                .field("replayed", Json::Int(report.replayed as i64))
                .field(
                    "dropped_uncommitted",
                    Json::Int(report.dropped_uncommitted as i64),
                )
                .field("truncated_bytes", Json::Int(report.truncated_bytes as i64))
                .field("torn_tail", Json::Bool(report.torn_tail))
                .field(
                    "events_replayed_per_sec",
                    Json::Float(fg_bench::rate(report.replayed as f64, recovery_seconds)),
                ),
        )
        .field(
            "completion",
            Json::obj()
                .field("events", Json::Int((sc.events.len() - survived) as i64))
                .field("wall_seconds", Json::Float(completion_seconds)),
        )
        .field(
            "golden_digests",
            match &golden {
                Some((name, d)) => Json::obj()
                    .field("file", Json::str(name))
                    .field("checked", Json::Int(d.len() as i64))
                    .field("matched", Json::Bool(true)),
                None => Json::Null,
            },
        );
    println!("{}", report_json.compact());
    if let Some(out) = flag("json") {
        std::fs::write(out, report_json.pretty()).expect("writing --json");
        eprintln!("wrote {out}");
    }
    let _ = std::fs::remove_dir_all(&store_dir);
}

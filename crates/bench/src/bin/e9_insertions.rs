//! E9 — the paper's second and third improvements over the Forgiving
//! Tree: adversarial *insertions* are handled, and no initialisation
//! phase is needed.
//!
//! Runs insert-heavy churn against both systems. The Forgiving Graph
//! keeps its `G'`-relative stretch bound; the Forgiving Tree protects
//! only its spanning tree, so edges inserted off-tree die unprotected and
//! stretch (relative to everything the adversary built) deteriorates.
//! The preprocessing column shows the PODC 2008 `O(n log n)` set-up cost
//! against the Forgiving Graph's zero.

use fg_adversary::{replay, run_attack, ChurnAdversary};
use fg_baselines::ForgivingTree;
use fg_bench::BenchArgs;
use fg_core::ForgivingGraph;
use fg_graph::generators;
use fg_metrics::{f2, measure_sampled, Table};

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed(31);
    let mut table = Table::new(
        "E9 — insertions + preprocessing: Forgiving Graph vs Forgiving Tree",
        [
            "n0",
            "steps",
            "healer",
            "init msgs",
            "connected",
            "max stretch",
            "mean stretch",
            "max deg ratio",
        ],
    );
    for &base in &[64usize, 256] {
        let n = args.scale_n(base);
        let g = generators::connected_erdos_renyi(n, 8.0 / n as f64, seed);
        let mut fg = ForgivingGraph::from_graph(&g).expect("fresh");
        // Insert-heavy churn: 70% insertions with fan up to 4.
        let steps = 2 * n;
        let mut adv = ChurnAdversary::new(seed.wrapping_sub(22), 0.3, 4, 8, steps);
        let log = run_attack(&mut fg, &mut adv, steps).expect("attack is legal");
        fg.check_invariants().expect("invariants hold");

        let mut ft = ForgivingTree::from_graph(&g);
        let _ = replay(&mut ft, &log.events).expect("same trace is legal");

        for (init, summary) in [
            (0u64, measure_sampled(&fg, 64, seed.wrapping_sub(26))),
            (
                ft.init_messages(),
                measure_sampled(&ft, 64, seed.wrapping_sub(26)),
            ),
        ] {
            table.push_row([
                n.to_string(),
                format!("{}+{}", log.insertions, log.deletions),
                summary.healer.to_string(),
                init.to_string(),
                summary.connected.to_string(),
                f2(summary.stretch.max),
                f2(summary.stretch.mean),
                f2(summary.degree.max_ratio),
            ]);
        }
    }
    args.emit(&[&table]);
}

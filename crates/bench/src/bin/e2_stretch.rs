//! E2 — Theorem 1.2: stretch vs `G'` never exceeds `⌈log₂ n⌉`.
//!
//! Deletes half of each workload and measures worst-case pair stretch
//! against the bound. Stretch is exact up to `--stretch-threshold` live
//! nodes (default 256) and sampled from `--stretch-samples` BFS sources
//! (default 48) above it, so scaled-up sweeps (`--scale`) never go
//! quadratic. Shared flags: `--seed`, `--scale`, `--json <path>`.

use fg_adversary::{run_attack, MaxDegreeDeleter, RandomDeleter};
use fg_bench::{ceil_log2, engine, BenchArgs};
use fg_core::PlacementPolicy;
use fg_metrics::{f2, stretch_auto, Table};

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed(3);
    let threshold = args.get("stretch-threshold", 256usize);
    let samples = args.get("stretch-samples", 48usize);
    let mut table = Table::new(
        "E2 — network stretch vs G' (Theorem 1.2; bound ⌈log₂ n⌉)",
        [
            "workload",
            "n",
            "adversary",
            "max stretch",
            "mean",
            "pairs",
            "bound",
            "within",
        ],
    );
    for &workload in &["star", "er", "ba", "cycle"] {
        for &base in &[64usize, 256, 1024] {
            let n = args.scale_n(base);
            for adv_name in ["random", "max-degree"] {
                let mut fg = engine(workload, n, seed, PlacementPolicy::Adjacent);
                let floor = n / 2;
                if adv_name == "random" {
                    let mut adv = RandomDeleter::new(seed + 2, floor);
                    run_attack(&mut fg, &mut adv, n).expect("attack is legal");
                } else {
                    let mut adv = MaxDegreeDeleter::new(floor);
                    run_attack(&mut fg, &mut adv, n).expect("attack is legal");
                }
                let stretch = stretch_auto(fg.image(), fg.ghost(), threshold, samples, seed + 6);
                let bound = ceil_log2(fg.nodes_ever());
                table.push_row([
                    workload.to_string(),
                    n.to_string(),
                    adv_name.to_string(),
                    f2(stretch.max),
                    f2(stretch.mean),
                    stretch.pairs.to_string(),
                    bound.to_string(),
                    (stretch.max <= bound as f64).to_string(),
                ]);
            }
        }
    }
    args.emit(&[&table]);
}

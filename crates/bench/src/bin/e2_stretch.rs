//! E2 — Theorem 1.2: stretch vs `G'` never exceeds `⌈log₂ n⌉`.
//!
//! Deletes half of each workload and measures the exact worst-case pair
//! stretch (sampled BFS sources for the larger sizes) against the bound.

use fg_adversary::{run_attack, MaxDegreeDeleter, RandomDeleter};
use fg_bench::{ceil_log2, engine};
use fg_core::PlacementPolicy;
use fg_metrics::{f2, stretch_exact, stretch_sampled, Table};

fn main() {
    let mut table = Table::new(
        "E2 — network stretch vs G' (Theorem 1.2; bound ⌈log₂ n⌉)",
        [
            "workload",
            "n",
            "adversary",
            "max stretch",
            "mean",
            "bound",
            "within",
        ],
    );
    for &workload in &["star", "er", "ba", "cycle"] {
        for &n in &[64usize, 256, 1024] {
            for adv_name in ["random", "max-degree"] {
                let mut fg = engine(workload, n, 3, PlacementPolicy::Adjacent);
                let floor = n / 2;
                if adv_name == "random" {
                    let mut adv = RandomDeleter::new(5, floor);
                    run_attack(&mut fg, &mut adv, n).expect("attack is legal");
                } else {
                    let mut adv = MaxDegreeDeleter::new(floor);
                    run_attack(&mut fg, &mut adv, n).expect("attack is legal");
                }
                let stretch = if n <= 256 {
                    stretch_exact(fg.image(), fg.ghost())
                } else {
                    stretch_sampled(fg.image(), fg.ghost(), 48, 9)
                };
                let bound = ceil_log2(fg.nodes_ever());
                table.push_row([
                    workload.to_string(),
                    n.to_string(),
                    adv_name.to_string(),
                    f2(stretch.max),
                    f2(stretch.mean),
                    bound.to_string(),
                    (stretch.max <= bound as f64).to_string(),
                ]);
            }
        }
    }
    println!("{}", table.to_markdown());
}

//! E5 — the paper's positioning (§1, related work): the Forgiving Graph
//! against its predecessor and the naive healers, under the *same*
//! adversarial trace.
//!
//! Runs a recorded random-deletion attack against every healer and
//! tabulates connectivity, stretch, degree blow-up and diameter.

use fg_adversary::{replay, run_attack, RandomDeleter};
use fg_baselines::{
    BinaryTreeHealer, CliqueHealer, CycleHealer, ForgivingTree, NoHealer, StarHealer,
};
use fg_bench::BenchArgs;
use fg_core::{ForgivingGraph, SelfHealer};
use fg_graph::generators;
use fg_metrics::{f2, measure, Table};

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed(21);
    let n = args.scale_n(256);
    let g = generators::connected_erdos_renyi(n, 8.0 / n as f64, seed);

    // Record the attack once, against the Forgiving Graph.
    let mut fg = ForgivingGraph::from_graph(&g).expect("fresh graph");
    let mut adv = RandomDeleter::new(seed.wrapping_sub(4), n / 2);
    let log = run_attack(&mut fg, &mut adv, n).expect("attack is legal");

    let mut healers: Vec<Box<dyn SelfHealer>> = vec![
        Box::new(ForgivingTree::from_graph(&g)),
        Box::new(NoHealer::from_graph(&g)),
        Box::new(CycleHealer::from_graph(&g)),
        Box::new(StarHealer::from_graph(&g)),
        Box::new(CliqueHealer::from_graph(&g)),
        Box::new(BinaryTreeHealer::from_graph(&g)),
    ];

    let mut table = Table::new(
        &format!(
            "E5 — healer comparison: ER n={n}, {} random deletions (same trace for all)",
            log.deletions
        ),
        [
            "healer",
            "connected",
            "max stretch",
            "mean stretch",
            "max deg ratio",
            "diameter",
            "edges",
        ],
    );

    let summary = measure(&fg);
    table.push_row([
        summary.healer.to_string(),
        summary.connected.to_string(),
        f2(summary.stretch.max),
        f2(summary.stretch.mean),
        f2(summary.degree.max_ratio),
        summary.diameter.map_or("-".into(), |d| d.to_string()),
        fg.image().edge_count().to_string(),
    ]);

    for healer in &mut healers {
        let _ = replay(healer.as_mut(), &log.events).expect("same trace is legal");
        let summary = measure(healer.as_ref());
        table.push_row([
            summary.healer.to_string(),
            summary.connected.to_string(),
            f2(summary.stretch.max),
            f2(summary.stretch.mean),
            f2(summary.degree.max_ratio),
            summary.diameter.map_or("-".into(), |d| d.to_string()),
            healer.image().edge_count().to_string(),
        ]);
    }
    args.emit(&[&table]);
}

//! E3 — Lemma 4 / Theorem 1.3: repair costs from the *message-passing*
//! protocol.
//!
//! Hub deletions of increasing degree `d` on stars and dense random
//! graphs; per repair: messages (`O(d log n)`), rounds
//! (`O(log d · log n)`), and the largest message (`O(log n)` names).
//! The normalized columns divide by the paper envelopes — flat values
//! mean the shape holds.

use fg_bench::BenchArgs;
use fg_core::{PlacementPolicy, SelfHealer};
use fg_dist::DistHealer;
use fg_graph::{generators, NodeId};
use fg_metrics::{f2, Table};

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed(13);
    let mut table = Table::new(
        "E3 — distributed repair cost (Lemma 4): messages O(d log n), rounds O(log d · log n)",
        [
            "graph",
            "n",
            "d",
            "messages",
            "msgs/(d·log n)",
            "rounds",
            "rounds/(log d·log n)",
            "max msg bits",
        ],
    );
    // Star hubs: the cleanest d sweep.
    for &base in &[4usize, 8, 16, 32, 64, 128, 256] {
        let d = args.scale_with_floor(base, 2);
        let g = generators::star(d + 1);
        let mut healer = DistHealer::from_graph(&g, PlacementPolicy::Adjacent);
        let _ = healer.delete(NodeId::new(0)).expect("hub is alive");
        let cost = healer.costs().last().expect("repair ran").clone();
        table.push_row([
            "star".to_string(),
            (d + 1).to_string(),
            d.to_string(),
            cost.messages.to_string(),
            f2(cost.normalized_messages()),
            cost.rounds.to_string(),
            f2(cost.normalized_rounds()),
            cost.max_message_bits.to_string(),
        ]);
    }
    // Random graphs under cascades: merged reconstruction trees.
    for &base in &[32usize, 64, 128, 256] {
        let n = args.scale_n(base);
        let g = generators::connected_erdos_renyi(n, 8.0 / n as f64, seed);
        let mut healer = DistHealer::from_graph(&g, PlacementPolicy::Adjacent);
        // Delete a quarter of the nodes, then report the costliest repair.
        for v in 0..(n as u32) / 4 {
            let _ = healer.delete(NodeId::new(v)).expect("alive");
        }
        let worst = healer
            .costs()
            .iter()
            .max_by_key(|c| c.messages)
            .expect("repairs happened")
            .clone();
        table.push_row([
            "er-cascade".to_string(),
            n.to_string(),
            worst.victim_degree.to_string(),
            worst.messages.to_string(),
            f2(worst.normalized_messages()),
            worst.rounds.to_string(),
            f2(worst.normalized_rounds()),
            worst.max_message_bits.to_string(),
        ]);
    }
    args.emit(&[&table]);
}

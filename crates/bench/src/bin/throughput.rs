//! Throughput — end-to-end event-ingestion benchmark over the
//! ScenarioRunner workload registry, optionally serving a mixed
//! read/write query workload.
//!
//! Replays named adversarial workloads (default: the 50k-event `churn`
//! trace the perf trajectory tracks) through the sequential engine and
//! optionally the distributed protocol, in timed batches, and writes the
//! machine-readable report consumed by CI (`BENCH_throughput.json`).
//!
//! With `--queries N` the run becomes a mixed read/write workload: `N`
//! reads are interleaved across the write batches (e.g. `--events 50000
//! --queries 200000` is an 80/20 read/write mix) and answered through
//! four read paths — the landmark `QueryCache` on the live adjacency,
//! the `FrozenQueryCache` serving tier (per-batch image-only CSR
//! publishes, persistent ghost landmark state, dense bitset kernels),
//! the uncached `QueryOps` API (bidirectional BFS), and the naive
//! per-query-BFS baseline (sampled; one fresh full BFS per query) — so
//! the JSON records `queries_per_sec` for each, the speedups, and the
//! (hard-gated) zero answer-mismatch count.
//!
//! Flags (all optional): `--workloads a,b,c`, `--n <initial size>`,
//! `--events <count>`, `--batch <size>`, `--backend engine|dist|both`,
//! `--threads <w>` (executor width for the dist backend),
//! `--threads-sweep w1,w2,...` (replay the dist backend once per width
//! and emit a `threads_sweep` comparison section),
//! `--queries <count>` / `--query-mix dist:80,path:10,stretch:10` /
//! `--query-seed <u64>` / `--query-hot <k>` / `--query-cache <cap>` /
//! `--query-naive-every <k>` (the mixed read workload),
//! `--profile 1` (per-phase wall times — insert/gather/strip/plan/merge
//! on the write side, freeze/query/rebuild buckets on the read side —
//! into a `profile` JSON section), `--compact 1` (run the engine
//! backend with the default arena [`CompactionPolicy`] and record the
//! post-run arena occupancy),
//! `--trace-out <path>` (dump the trace for cross-ref replays),
//! `--wal <dir>` (run the engine backend through a [`DurableHealer`]
//! so every event is logged-then-fsynced before acknowledgement) with
//! `--checkpoint-every <k>` / `--wal-sync-every <k>` tuning, plus the
//! shared `--seed` / `--scale` / `--json <path>`.

use fg_bench::json::Json;
use fg_bench::{
    scenario, BenchArgs, QueryStats, QueryWorkload, RunResult, Scenario, ScenarioRunner,
};
use fg_core::{
    CompactionPolicy, EngineStats, ForgivingGraph, PhaseTimes, PlacementPolicy, SelfHealer,
};
use fg_dist::DistHealer;
use fg_metrics::{f2, Table};
use fg_store::{DurableHealer, DurableOptions};

/// Everything one backend replay produced: the write-side result, the
/// read-side stats (mixed runs), the per-phase wall times (`--profile`)
/// and the healer's lifetime counters (arena occupancy).
struct BackendRun {
    result: RunResult,
    queries: Option<QueryStats>,
    phases: Option<PhaseTimes>,
    stats: Option<EngineStats>,
}

/// One backend replay: with `profile` on, the healer accumulates
/// per-phase wall times while it runs (healers without a phase structure
/// return `None` and are skipped in the profile section).
fn run_backend(
    runner: &ScenarioRunner,
    sc: &Scenario,
    healer: &mut dyn SelfHealer,
    wl: Option<&QueryWorkload>,
    profile: bool,
) -> BackendRun {
    if profile {
        healer.enable_profiling();
    }
    let (result, queries) = match wl {
        Some(wl) => {
            let mixed = runner
                .run_mixed(sc, healer, wl)
                .expect("scenario traces are legal");
            (mixed.run, Some(mixed.queries))
        }
        None => (
            runner.run(sc, healer).expect("scenario traces are legal"),
            None,
        ),
    };
    BackendRun {
        result,
        queries,
        phases: healer.phase_times(),
        stats: healer.lifetime_stats(),
    }
}

fn run_dist(
    sc: &Scenario,
    batch: usize,
    threads: usize,
    wl: Option<&QueryWorkload>,
    profile: bool,
) -> BackendRun {
    let mut healer =
        DistHealer::from_graph_threaded(&sc.initial, PlacementPolicy::Adjacent, threads);
    let runner = ScenarioRunner::new(batch).with_threads(threads);
    run_backend(&runner, sc, &mut healer, wl, profile)
}

/// The `--profile` JSON entry for one run: write-side phase seconds (and
/// how much of the ingestion wall they cover) plus the read-side time
/// buckets from the mixed workload.
fn profile_json(run: &BackendRun) -> Option<Json> {
    let t = run.phases?;
    let write = Json::obj()
        .field("insert_seconds", Json::Float(t.insert))
        .field("gather_seconds", Json::Float(t.gather))
        .field("strip_seconds", Json::Float(t.strip))
        .field("plan_seconds", Json::Float(t.plan))
        .field("merge_seconds", Json::Float(t.merge))
        .field("total_phase_seconds", Json::Float(t.total()))
        .field("wall_seconds", Json::Float(run.result.wall_seconds))
        .field(
            "coverage",
            Json::Float(fg_bench::rate(t.total(), run.result.wall_seconds)),
        );
    let mut entry = Json::obj()
        .field("scenario", Json::str(&run.result.scenario))
        .field("backend", Json::str(&run.result.backend))
        .field("write", write);
    if let Some(q) = &run.queries {
        entry = entry.field(
            "read",
            Json::obj()
                .field("freeze_seconds", Json::Float(q.freeze_seconds))
                .field(
                    "rebuild_seconds",
                    Json::Float(q.maintain_seconds + q.frozen_maintain_seconds),
                )
                .field(
                    "query_seconds",
                    Json::Float(q.cached_seconds + q.frozen_seconds),
                ),
        );
    }
    Some(entry)
}

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed(42);
    let n = args.scale_n(args.get("n", 1024usize));
    let events = args.get("events", 50_000usize);
    let batch = args.get("batch", 256usize);
    let threads = args.threads();
    let backend = args.get("backend", "engine".to_string());
    let names = args.get("workloads", "churn".to_string());
    let json_path = args.json_path().unwrap_or("BENCH_throughput.json");
    let host_cpus = fg_bench::host_cpus();
    let workload = args.query_workload(seed.wrapping_add(0x9e37));
    let wal_dir = args.raw("wal").map(std::path::PathBuf::from);
    let profile = args.get("profile", 0usize) != 0;
    let compact = (args.get("compact", 0usize) != 0).then(CompactionPolicy::default);
    let checkpoint_every = args.get("checkpoint-every", 0u64);
    let wal_opts = DurableOptions {
        checkpoint_every: (checkpoint_every > 0).then_some(checkpoint_every),
        sync_every: args.get("wal-sync-every", 64usize).max(1),
    };

    let runner = ScenarioRunner::new(batch);
    let mut table = Table::new(
        &format!("Throughput — ScenarioRunner, n={n}, {events} events, batch {batch}"),
        [
            "workload",
            "backend",
            "threads",
            "events",
            "deletes",
            "wall s",
            "events/s",
            "mean batch ms",
            "max batch ms",
            "final nodes",
        ],
    );
    let mut query_table = Table::new(
        "Mixed read/write — landmark cache (live vs frozen CSR) vs uncached API vs naive BFS",
        [
            "workload",
            "backend",
            "queries",
            "mix",
            "cached q/s",
            "frozen q/s",
            "api q/s",
            "naive q/s",
            "vs naive",
            "frozen/cached",
            "hits",
            "misses",
            "mismatches",
        ],
    );
    let mut results: Vec<BackendRun> = Vec::new();
    let mut sweeps = Vec::new();
    for name in names.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let sc = scenario(name, n, events, seed);
        if let Some(path) = args.raw("trace-out") {
            std::fs::write(path, sc.to_trace()).expect("writing --trace-out");
            eprintln!("wrote trace to {path}");
        }
        let dist_backend = backend == "dist" || backend == "both";
        let sweep = if dist_backend {
            args.raw("threads-sweep")
        } else {
            if args.raw("threads-sweep").is_some() {
                eprintln!(
                    "--threads-sweep replays the dist backend; ignored with --backend {backend}"
                );
            }
            None
        };
        let mut runs: Vec<BackendRun> = Vec::new();
        if backend == "engine" || backend == "both" {
            let mut fg = ForgivingGraph::from_graph(&sc.initial).expect("fresh G0");
            fg.set_compaction(compact);
            match &wal_dir {
                // Durable run: every event is logged-then-fsynced before the
                // runner sees its outcome, so the wall clock honestly prices
                // the write barrier. One store per workload name.
                Some(dir) => {
                    let store = dir.join(name);
                    let _ = std::fs::remove_dir_all(&store);
                    let mut durable =
                        DurableHealer::create(fg, &store, wal_opts).expect("fresh WAL store");
                    runs.push(run_backend(
                        &runner,
                        &sc,
                        &mut durable,
                        workload.as_ref(),
                        profile,
                    ));
                    durable.sync().expect("final WAL sync");
                    eprintln!("wal store for {name}: {}", store.display());
                }
                None => {
                    runs.push(run_backend(
                        &runner,
                        &sc,
                        &mut fg,
                        workload.as_ref(),
                        profile,
                    ));
                }
            }
        }
        // With a sweep, the sweep's widths *are* the dist runs — a
        // standalone run at `--threads` would just duplicate one of them.
        if dist_backend && sweep.is_none() {
            runs.push(run_dist(&sc, batch, threads, workload.as_ref(), profile));
        }
        assert!(
            !runs.is_empty() || sweep.is_some(),
            "unknown --backend {backend:?}"
        );

        // The threads sweep: the *same* trace through the dist backend at
        // every requested width. Results are bit-identical by the
        // executor's determinism contract; only wall-clock may move.
        if let Some(widths) = sweep {
            let mut entries = Vec::new();
            let mut base_wall = None;
            for w in widths.split(',').filter_map(|t| t.trim().parse().ok()) {
                let run = run_dist(&sc, batch, w, workload.as_ref(), profile);
                let base = *base_wall.get_or_insert(run.result.wall_seconds);
                entries.push(
                    Json::obj()
                        .field("threads", Json::Int(w as i64))
                        .field("wall_seconds", Json::Float(run.result.wall_seconds))
                        .field("events_per_sec", Json::Float(run.result.events_per_sec))
                        .field(
                            "speedup_vs_first",
                            Json::Float(fg_bench::rate(base, run.result.wall_seconds)),
                        ),
                );
                runs.push(run);
            }
            sweeps.push(
                Json::obj()
                    .field("scenario", Json::str(name))
                    .field("backend", Json::str("fg-dist"))
                    .field("events", Json::Int(events as i64))
                    .field("entries", Json::Arr(entries)),
            );
        }

        for run in runs {
            let result = &run.result;
            table.push_row([
                result.scenario.clone(),
                result.backend.clone(),
                result.threads.to_string(),
                result.events.to_string(),
                result.deletes.to_string(),
                format!("{:.3}", result.wall_seconds),
                format!("{:.0}", result.events_per_sec),
                f2(result.mean_batch_ms),
                f2(result.max_batch_ms),
                result.final_nodes.to_string(),
            ]);
            if let Some(q) = &run.queries {
                assert_eq!(
                    q.mismatches, 0,
                    "{name}/{}: read paths diverged (cached/frozen/api/naive)",
                    result.backend
                );
                query_table.push_row([
                    result.scenario.clone(),
                    result.backend.clone(),
                    q.queries.to_string(),
                    q.mix.clone(),
                    format!("{:.0}", q.cached_qps),
                    format!("{:.0}", q.frozen_qps),
                    format!("{:.0}", q.api_qps),
                    format!("{:.0}", q.naive_qps),
                    f2(q.speedup),
                    f2(q.speedup_frozen_vs_cached),
                    q.cache.hits.to_string(),
                    q.cache.misses.to_string(),
                    q.mismatches.to_string(),
                ]);
            }
            results.push(run);
        }
    }
    println!("{}", table.to_markdown());
    if workload.is_some() {
        println!("{}", query_table.to_markdown());
    }

    let mut config = Json::obj()
        .field("n", Json::Int(n as i64))
        .field("events", Json::Int(events as i64))
        .field("batch", Json::Int(batch as i64))
        .field("seed", Json::Int(seed as i64))
        .field("threads", Json::Int(threads as i64))
        .field("host_cpus", Json::Int(host_cpus as i64));
    if let Some(dir) = &wal_dir {
        config = config
            .field("wal", Json::str(dir.display().to_string()))
            .field("wal_checkpoint_every", Json::Int(checkpoint_every as i64))
            .field("wal_sync_every", Json::Int(wal_opts.sync_every as i64));
    }
    if let Some(policy) = &compact {
        config = config
            .field("compact_min_density", Json::Float(policy.min_density))
            .field("compact_min_slots", Json::Int(policy.min_slots as i64));
    }
    if profile {
        config = config.field("profile", Json::Int(1));
    }
    if let Some(wl) = &workload {
        config = config
            .field("queries", Json::Int(wl.queries as i64))
            .field("query_mix", Json::str(wl.mix.spec()))
            .field("query_seed", Json::Int(wl.seed as i64))
            .field("query_hot", Json::Int(wl.hot as i64))
            .field("query_cache", Json::Int(wl.cache_capacity as i64));
    }
    let mut report = Json::obj()
        .field("bench", Json::str("throughput"))
        .field("config", config);
    if !sweeps.is_empty() {
        report = report.field("threads_sweep", Json::Arr(sweeps));
    }
    let profiles: Vec<Json> = results.iter().filter_map(profile_json).collect();
    if !profiles.is_empty() {
        report = report.field("profile", Json::Arr(profiles));
    }
    let report = report.field(
        "results",
        Json::Arr(
            results
                .iter()
                .map(|run| {
                    let mut obj = run.result.to_json();
                    if let Some(q) = &run.queries {
                        obj = obj.field("queries", q.to_json());
                    }
                    if let Some(s) = &run.stats {
                        obj = obj.field(
                            "arena",
                            Json::obj()
                                .field("live", Json::Int(s.arena_live as i64))
                                .field("slots", Json::Int(s.arena_slots as i64))
                                .field("density", Json::Float(s.arena_density()))
                                .field("compactions", Json::Int(s.compactions as i64)),
                        );
                    }
                    obj
                })
                .collect(),
        ),
    );
    std::fs::write(json_path, report.pretty()).expect("writing benchmark JSON");
    eprintln!("wrote {json_path}");
}

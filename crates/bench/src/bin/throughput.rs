//! Throughput — end-to-end event-ingestion benchmark over the
//! ScenarioRunner workload registry.
//!
//! Replays named adversarial workloads (default: the 50k-event `churn`
//! trace the perf trajectory tracks) through the sequential engine and
//! optionally the distributed protocol, in timed batches, and writes the
//! machine-readable report consumed by CI (`BENCH_throughput.json`).
//!
//! Flags (all optional): `--workloads a,b,c`, `--n <initial size>`,
//! `--events <count>`, `--batch <size>`, `--backend engine|dist|both`,
//! `--threads <w>` (executor width for the dist backend),
//! `--threads-sweep w1,w2,...` (replay the dist backend once per width
//! and emit a `threads_sweep` comparison section),
//! `--trace-out <path>` (dump the trace for cross-ref replays), plus the
//! shared `--seed` / `--scale` / `--json <path>`.

use fg_bench::json::Json;
use fg_bench::{scenario, BenchArgs, RunResult, Scenario, ScenarioRunner};
use fg_core::{ForgivingGraph, PlacementPolicy};
use fg_dist::DistHealer;
use fg_metrics::{f2, Table};

fn run_dist(sc: &Scenario, batch: usize, threads: usize) -> RunResult {
    let mut healer =
        DistHealer::from_graph_threaded(&sc.initial, PlacementPolicy::Adjacent, threads);
    ScenarioRunner::new(batch)
        .with_threads(threads)
        .run(sc, &mut healer)
        .expect("scenario traces are legal")
}

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed(42);
    let n = args.scale_n(args.get("n", 1024usize));
    let events = args.get("events", 50_000usize);
    let batch = args.get("batch", 256usize);
    let threads = args.threads();
    let backend = args.get("backend", "engine".to_string());
    let names = args.get("workloads", "churn".to_string());
    let json_path = args.json_path().unwrap_or("BENCH_throughput.json");
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);

    let runner = ScenarioRunner::new(batch);
    let mut table = Table::new(
        &format!("Throughput — ScenarioRunner, n={n}, {events} events, batch {batch}"),
        [
            "workload",
            "backend",
            "threads",
            "events",
            "deletes",
            "wall s",
            "events/s",
            "mean batch ms",
            "max batch ms",
            "final nodes",
        ],
    );
    let mut results = Vec::new();
    let mut sweeps = Vec::new();
    for name in names.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let sc = scenario(name, n, events, seed);
        if let Some(path) = args.raw("trace-out") {
            std::fs::write(path, sc.to_trace()).expect("writing --trace-out");
            eprintln!("wrote trace to {path}");
        }
        let dist_backend = backend == "dist" || backend == "both";
        let sweep = if dist_backend {
            args.raw("threads-sweep")
        } else {
            if args.raw("threads-sweep").is_some() {
                eprintln!(
                    "--threads-sweep replays the dist backend; ignored with --backend {backend}"
                );
            }
            None
        };
        let mut runs: Vec<RunResult> = Vec::new();
        if backend == "engine" || backend == "both" {
            let mut fg = ForgivingGraph::from_graph(&sc.initial).expect("fresh G0");
            runs.push(runner.run(&sc, &mut fg).expect("scenario traces are legal"));
        }
        // With a sweep, the sweep's widths *are* the dist runs — a
        // standalone run at `--threads` would just duplicate one of them.
        if dist_backend && sweep.is_none() {
            runs.push(run_dist(&sc, batch, threads));
        }
        assert!(
            !runs.is_empty() || sweep.is_some(),
            "unknown --backend {backend:?}"
        );

        // The threads sweep: the *same* trace through the dist backend at
        // every requested width. Results are bit-identical by the
        // executor's determinism contract; only wall-clock may move.
        if let Some(widths) = sweep {
            let mut entries = Vec::new();
            let mut base_wall = None;
            for w in widths.split(',').filter_map(|t| t.trim().parse().ok()) {
                let result = run_dist(&sc, batch, w);
                let base = *base_wall.get_or_insert(result.wall_seconds);
                entries.push(
                    Json::obj()
                        .field("threads", Json::Int(w as i64))
                        .field("wall_seconds", Json::Float(result.wall_seconds))
                        .field("events_per_sec", Json::Float(result.events_per_sec))
                        .field(
                            "speedup_vs_first",
                            Json::Float(base / result.wall_seconds.max(1e-12)),
                        ),
                );
                runs.push(result);
            }
            sweeps.push(
                Json::obj()
                    .field("scenario", Json::str(name))
                    .field("backend", Json::str("fg-dist"))
                    .field("events", Json::Int(events as i64))
                    .field("entries", Json::Arr(entries)),
            );
        }

        for result in runs {
            table.push_row([
                result.scenario.clone(),
                result.backend.clone(),
                result.threads.to_string(),
                result.events.to_string(),
                result.deletes.to_string(),
                format!("{:.3}", result.wall_seconds),
                format!("{:.0}", result.events_per_sec),
                f2(result.mean_batch_ms),
                f2(result.max_batch_ms),
                result.final_nodes.to_string(),
            ]);
            results.push(result);
        }
    }
    println!("{}", table.to_markdown());

    let mut report = Json::obj().field("bench", Json::str("throughput")).field(
        "config",
        Json::obj()
            .field("n", Json::Int(n as i64))
            .field("events", Json::Int(events as i64))
            .field("batch", Json::Int(batch as i64))
            .field("seed", Json::Int(seed as i64))
            .field("threads", Json::Int(threads as i64))
            .field("host_cpus", Json::Int(host_cpus as i64)),
    );
    if !sweeps.is_empty() {
        report = report.field("threads_sweep", Json::Arr(sweeps));
    }
    let report = report.field(
        "results",
        Json::Arr(results.iter().map(|r| r.to_json()).collect()),
    );
    std::fs::write(json_path, report.pretty()).expect("writing benchmark JSON");
    eprintln!("wrote {json_path}");
}

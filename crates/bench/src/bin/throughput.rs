//! Throughput — end-to-end event-ingestion benchmark over the
//! ScenarioRunner workload registry.
//!
//! Replays named adversarial workloads (default: the 50k-event `churn`
//! trace the perf trajectory tracks) through the sequential engine and
//! optionally the distributed protocol, in timed batches, and writes the
//! machine-readable report consumed by CI (`BENCH_throughput.json`).
//!
//! Flags (all optional): `--workloads a,b,c`, `--n <initial size>`,
//! `--events <count>`, `--batch <size>`, `--backend engine|dist|both`,
//! `--trace-out <path>` (dump the trace for cross-ref replays), plus the
//! shared `--seed` / `--scale` / `--json <path>`.

use fg_bench::json::Json;
use fg_bench::{scenario, BenchArgs, ScenarioRunner};
use fg_core::{ForgivingGraph, PlacementPolicy, SelfHealer};
use fg_dist::DistHealer;
use fg_metrics::{f2, Table};

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed(42);
    let n = args.scale_n(args.get("n", 1024usize));
    let events = args.get("events", 50_000usize);
    let batch = args.get("batch", 256usize);
    let backend = args.get("backend", "engine".to_string());
    let names = args.get("workloads", "churn".to_string());
    let json_path = args.json_path().unwrap_or("BENCH_throughput.json");

    let runner = ScenarioRunner::new(batch);
    let mut table = Table::new(
        &format!("Throughput — ScenarioRunner, n={n}, {events} events, batch {batch}"),
        [
            "workload",
            "backend",
            "events",
            "deletes",
            "wall s",
            "events/s",
            "mean batch ms",
            "max batch ms",
            "final nodes",
        ],
    );
    let mut results = Vec::new();
    for name in names.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let sc = scenario(name, n, events, seed);
        if let Some(path) = args.raw("trace-out") {
            std::fs::write(path, sc.to_trace()).expect("writing --trace-out");
            eprintln!("wrote trace to {path}");
        }
        let mut backends: Vec<Box<dyn SelfHealer>> = Vec::new();
        if backend == "engine" || backend == "both" {
            backends.push(Box::new(
                ForgivingGraph::from_graph(&sc.initial).expect("fresh G0"),
            ));
        }
        if backend == "dist" || backend == "both" {
            backends.push(Box::new(DistHealer::from_graph(
                &sc.initial,
                PlacementPolicy::Adjacent,
            )));
        }
        assert!(!backends.is_empty(), "unknown --backend {backend:?}");
        for healer in &mut backends {
            let result = runner
                .run(&sc, healer.as_mut())
                .expect("scenario traces are legal");
            table.push_row([
                result.scenario.clone(),
                result.backend.clone(),
                result.events.to_string(),
                result.deletes.to_string(),
                format!("{:.3}", result.wall_seconds),
                format!("{:.0}", result.events_per_sec),
                f2(result.mean_batch_ms),
                f2(result.max_batch_ms),
                result.final_nodes.to_string(),
            ]);
            results.push(result);
        }
    }
    println!("{}", table.to_markdown());

    let report = Json::obj()
        .field("bench", Json::str("throughput"))
        .field(
            "config",
            Json::obj()
                .field("n", Json::Int(n as i64))
                .field("events", Json::Int(events as i64))
                .field("batch", Json::Int(batch as i64))
                .field("seed", Json::Int(seed as i64)),
        )
        .field(
            "results",
            Json::Arr(results.iter().map(|r| r.to_json()).collect()),
        );
    std::fs::write(json_path, report.pretty()).expect("writing benchmark JSON");
    eprintln!("wrote {json_path}");
}

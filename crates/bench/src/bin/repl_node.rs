//! repl_node — a killable master / verifying replica process pair for
//! the CI replication gate.
//!
//! **Master** (`--role master`): opens (or creates) a durable store at
//! `--dir`, binds an FGQ1 write-master server and an FGR1 replication
//! listener on ephemeral loopback ports (written to `--ports`, one
//! address per line), then applies the deterministic scenario trace up
//! to `--to` through the writer thread — appending one
//! `"<applied> <epoch> <chain:016x>"` line per committed batch to
//! `--golden` (the golden digest stream). With `--linger 1` it then
//! parks serving until killed; CI `kill -9`s it here, restarts it with
//! a larger `--to`, and the recovered store resumes exactly where the
//! acknowledged stream left off (the golden file is append-only across
//! lives). On restart the already-applied prefix is detected from the
//! recovered epoch and skipped.
//!
//! **Replica** (`--role replica`): bootstraps a replica store at
//! `--dir` from the master's FGR1 port, syncs to caught-up, and then
//! **gates**: the replica's `(applied, epoch, chain)` must equal the
//! last line of the master's golden stream, every probe answer served
//! by the replica over FGQ1 must be bit-identical (body and stamp) to
//! the master's answer for the same request, and with `--check-dist 1`
//! an in-memory replay of the same trace prefix on the message-passing
//! backend must chain to the same certificate. Exits nonzero on any
//! divergence; `--json` records the verdict.
//!
//! Shared flags: `--workload churn --n 256 --events 4000 --seed 41
//! --batch 32` — both roles must agree so the trace is identical.

use fg_bench::json::Json;
use fg_bench::{scenario, BenchArgs};
use fg_core::{ForgivingGraph, NetworkEvent, PlacementPolicy, SelfHealer};
use fg_dist::DistHealer;
use fg_graph::NodeId;
use fg_serve::{
    spawn_writer, Client, Publisher, ReplicaNode, Request, Server, ServerConfig, WriteJob,
};
use fg_store::{DurableHealer, DurableOptions, ReplListener};
use std::io::Write;
use std::path::Path;
use std::sync::mpsc::channel;

fn opts() -> DurableOptions {
    DurableOptions {
        checkpoint_every: None,
        sync_every: 1,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let role = args.raw("role").expect("--role master|replica").to_string();
    match role.as_str() {
        "master" => master(&args),
        "replica" => replica(&args),
        other => panic!("--role {other:?} is not master|replica"),
    }
}

fn trace(args: &BenchArgs) -> (fg_graph::Graph, Vec<NetworkEvent>) {
    let workload = args.raw("workload").unwrap_or("churn").to_string();
    let n = args.get("n", 256usize);
    let events = args.get("events", 4_000usize);
    let seed = args.seed(41);
    let sc = scenario(&workload, n, events, seed);
    (sc.initial, sc.events)
}

fn master(args: &BenchArgs) {
    let (initial, events) = trace(args);
    let dir = args.raw("dir").expect("--dir <store>").to_string();
    let ports = args.raw("ports").expect("--ports <file>").to_string();
    let golden = args.raw("golden").expect("--golden <file>").to_string();
    let to = args.get("to", events.len()).min(events.len());
    let batch = args.get("batch", 32usize).max(1);
    let linger = args.get("linger", 0u8) != 0;

    // First life creates the store; later lives recover it — every
    // acknowledged event replays, so the applied prefix is derivable
    // from the recovered epoch.
    let base_epoch = ForgivingGraph::from_graph(&initial).unwrap().epoch();
    let durable = if fg_store::read_manifest(Path::new(&dir)).is_ok() {
        let (durable, report) = DurableHealer::<ForgivingGraph>::open(Path::new(&dir), opts())
            .expect("recover master store");
        eprintln!(
            "repl_node master: recovered epoch {} ({} replayed)",
            report.epoch, report.replayed
        );
        durable
    } else {
        DurableHealer::create(
            ForgivingGraph::from_graph(&initial).unwrap(),
            Path::new(&dir),
            opts(),
        )
        .expect("create master store")
    };
    let applied = (durable.epoch() - base_epoch) as usize;
    assert!(applied <= to, "store is ahead of --to; wrong trace flags?");

    let publisher = Publisher::from_durable(durable);
    let hub = publisher.hub();
    let (writer, writer_handle) = spawn_writer(publisher, 16);
    let server = Server::bind_master(
        ("127.0.0.1", 0),
        hub,
        writer.clone(),
        ServerConfig::default(),
    )
    .expect("bind FGQ1 master");
    let listener = ReplListener::bind("127.0.0.1:0", Path::new(&dir)).expect("bind FGR1");
    std::fs::write(
        &ports,
        format!("{}\n{}\n", server.addr(), listener.local_addr()),
    )
    .expect("write ports file");
    eprintln!(
        "repl_node master: fgq {} fgr {} (applied {applied}/{to})",
        server.addr(),
        listener.local_addr()
    );

    // fg-lint: allow(blessed-io): bench harness golden-file artifact; CI compares contents, crash-durability is not at stake
    let mut golden_file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&golden)
        .expect("open golden file");
    let mut total = applied;
    for chunk in events[applied..to].chunks(batch) {
        let (reply_tx, reply_rx) = channel();
        writer
            .send(WriteJob {
                events: chunk.to_vec(),
                reply: reply_tx,
            })
            .expect("writer alive");
        let ack = reply_rx
            .recv()
            .expect("writer alive")
            .expect("legal trace applies");
        total += ack.applied;
        writeln!(golden_file, "{total} {} {:016x}", ack.epoch, ack.digest)
            .expect("append golden line");
        golden_file.flush().expect("flush golden line");
    }
    eprintln!("repl_node master: applied through {total}, golden stream flushed");

    if linger {
        // Serve until killed (CI kill -9 lands here).
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    server.shutdown();
    drop(writer);
    writer_handle.join().expect("writer joins");
    drop(listener);
}

fn replica(args: &BenchArgs) {
    let (initial, events) = trace(args);
    let dir = args.raw("dir").expect("--dir <store>").to_string();
    let ports = args.raw("ports").expect("--ports <file>").to_string();
    let golden = args.raw("golden").expect("--golden <file>").to_string();
    let probes = args.get("probes", 64usize);
    let check_dist = args.get("check-dist", 1u8) != 0;
    let batch = args.get("batch", 32usize).max(1);

    let ports_text = std::fs::read_to_string(&ports).expect("read ports file");
    let mut lines = ports_text.lines();
    let fgq_addr = lines.next().expect("fgq addr").trim().to_string();
    let fgr_addr = lines.next().expect("fgr addr").trim().to_string();

    let (mut node, report) =
        ReplicaNode::<ForgivingGraph>::bootstrap(fgr_addr.as_str(), Path::new(&dir), opts())
            .expect("bootstrap replica");
    eprintln!(
        "repl_node replica: local store at epoch {} ({} replayed)",
        report.epoch, report.replayed
    );
    let synced = node.sync_to_caught_up().expect("sync to caught up");
    eprintln!(
        "repl_node replica: streamed {synced} records to epoch {}",
        node.epoch()
    );

    // Gate 1: the replica's certificate equals the tail of the master's
    // golden digest stream.
    let golden_text = std::fs::read_to_string(&golden).expect("read golden file");
    let last = golden_text
        .lines()
        .last()
        .expect("golden stream is non-empty");
    let mut parts = last.split_whitespace();
    let golden_applied: usize = parts.next().unwrap().parse().unwrap();
    let golden_epoch: u64 = parts.next().unwrap().parse().unwrap();
    let golden_chain = u64::from_str_radix(parts.next().unwrap(), 16).unwrap();
    let mut mismatches = 0usize;
    if (node.epoch(), node.chain_digest()) != (golden_epoch, golden_chain) {
        eprintln!(
            "FAIL: replica certificate ({}, {:016x}) != golden tail ({golden_epoch}, {golden_chain:016x})",
            node.epoch(),
            node.chain_digest()
        );
        mismatches += 1;
    }

    // Gate 2: every served replica answer is bit-identical (body and
    // stamp) to the master's, over all seven wire ops.
    let replica_server = Server::bind(("127.0.0.1", 0), node.hub(), ServerConfig::default())
        .expect("bind replica FGQ1");
    let mut replica_client = Client::connect(replica_server.addr()).expect("connect replica");
    let mut master_client = Client::connect(fgq_addr.as_str()).expect("connect master");
    let universe = (initial.nodes_ever() + events.len()).max(2) as u64;
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut checked = 0usize;
    for _ in 0..probes {
        let u = NodeId::new((next() % universe) as u32);
        let v = NodeId::new((next() % universe) as u32);
        for request in [
            Request::Epoch,
            Request::Distance(u, v),
            Request::Path(u, v),
            Request::Stretch(u, v),
            Request::Degree(u),
            Request::Neighbors(u),
            Request::SameComponent(u, v),
        ] {
            let from_replica = replica_client.roundtrip(&request).expect("replica answers");
            let from_master = master_client.roundtrip(&request).expect("master answers");
            if from_replica != from_master {
                eprintln!("FAIL: divergent answer for {request:?}");
                mismatches += 1;
            }
            if (from_replica.epoch, from_replica.digest) != (golden_epoch, golden_chain) {
                eprintln!("FAIL: replica stamp off the golden stream for {request:?}");
                mismatches += 1;
            }
            checked += 1;
        }
    }

    // Gate 3: the other backend chains to the same certificate over the
    // same applied prefix.
    let mut dist_equal = true;
    if check_dist {
        let mut golden_replay =
            Publisher::new(DistHealer::from_graph(&initial, PlacementPolicy::Adjacent));
        for chunk in events[..golden_applied].chunks(batch) {
            let _ = golden_replay.apply_and_publish(chunk).expect("legal trace");
        }
        dist_equal = golden_replay.digest() == node.chain_digest()
            && golden_replay.hub().epoch() == node.epoch();
        if !dist_equal {
            eprintln!("FAIL: dist-backend replay certificate diverges");
            mismatches += 1;
        }
    }

    println!(
        "repl_node replica: {checked} probe answers checked, {mismatches} mismatches, \
         certificate ({}, {:016x})",
        node.epoch(),
        node.chain_digest()
    );
    if let Some(path) = args.json_path() {
        let doc = Json::obj()
            .field("synced_records", Json::Int(synced as i64))
            .field("epoch", Json::Int(node.epoch() as i64))
            .field("chain", Json::str(format!("{:016x}", node.chain_digest())))
            .field("golden_applied", Json::Int(golden_applied as i64))
            .field("probe_answers", Json::Int(checked as i64))
            .field("mismatches", Json::Int(mismatches as i64))
            .field("dist_replay_equal", Json::Bool(dist_equal));
        std::fs::write(path, doc.pretty()).expect("write json");
    }
    replica_server.shutdown();
    if mismatches > 0 {
        std::process::exit(1);
    }
}

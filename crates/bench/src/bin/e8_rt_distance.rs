//! E8 — Figure 2 / §3: a deleted node's neighbours, formerly at distance
//! 2 through it, end up within `2·⌈log₂ d⌉` hops through its
//! reconstruction tree.
//!
//! Deletes the hub of a star of degree `d` and measures the worst
//! pairwise distance among its former neighbours in the healed network.

use fg_bench::{ceil_log2, BenchArgs};
use fg_core::ForgivingGraph;
use fg_graph::{generators, traversal, NodeId};
use fg_metrics::Table;

fn main() {
    let args = BenchArgs::parse();
    let mut table = Table::new(
        "E8 — neighbour distance through one reconstruction tree (bound 2·⌈log₂ d⌉)",
        ["d", "RT depth", "max pair dist", "bound", "within"],
    );
    for &base in &[2usize, 4, 8, 16, 64, 256, 1024, 4096] {
        let d = args.scale_with_floor(base, 2);
        let mut fg = ForgivingGraph::from_graph(&generators::star(d + 1)).expect("fresh");
        let report = fg.delete(NodeId::new(0)).expect("hub alive");
        // Worst pairwise distance among the hub's former neighbours.
        let mut worst = 0u32;
        let sample: Vec<NodeId> = fg.image().iter().take(32).collect();
        for &x in &sample {
            let dist = traversal::bfs_distances(fg.image(), x);
            for y in fg.image().iter() {
                if let Some(dy) = dist[y.index()] {
                    worst = worst.max(dy);
                }
            }
        }
        let bound = 2 * ceil_log2(d);
        table.push_row([
            d.to_string(),
            report.rt_depth.to_string(),
            worst.to_string(),
            bound.to_string(),
            (worst <= bound).to_string(),
        ]);
    }
    args.emit(&[&table]);
}

//! repl_bench — loopback benchmark of the FGR1 WAL-shipping replication
//! path.
//!
//! Builds a durable master from a scenario trace, pre-loads part of the
//! history, then measures two phases against a live replica:
//!
//! 1. **catch-up** — the replica bootstraps from the master's shipped
//!    checkpoint and streams the pre-loaded WAL to the master's epoch;
//! 2. **tail-follow** — the master applies the rest of the trace batch
//!    by batch while the replica syncs after every batch.
//!
//! With `--kill-restart 1` the master is torn down mid-follow with no
//! checkpoint (listener and healer dropped), recovered from its store
//! directory, and re-served — the replica re-attaches and the follow
//! phase continues, which is the in-process twin of CI's `kill -9` flow.
//!
//! The run exits nonzero unless the replica ends bit-identical to the
//! master: equal epochs, equal certificate chain digests, and (as an
//! independent cross-backend check) a digest chain equal to an
//! in-memory replay of the same trace on the message-passing backend.
//!
//! Flags (all optional): `--workload churn`, `--n <initial>`,
//! `--events <count>`, `--batch <events per master commit>`,
//! `--preload <fraction pre-loaded before the replica attaches>`,
//! `--fetch-bytes <replica per-fetch cap>`, `--kill-restart 0|1`,
//! plus the shared `--seed` / `--json <path>`.

use fg_bench::json::Json;
use fg_bench::{scenario, BenchArgs};
use fg_core::{ForgivingGraph, PlacementPolicy, SelfHealer};
use fg_dist::DistHealer;
use fg_serve::Publisher;
use fg_store::{DurableHealer, DurableOptions, ReplListener, Replica};
use std::path::PathBuf;
use std::time::Instant;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fg-repl-bench-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts() -> DurableOptions {
    DurableOptions {
        checkpoint_every: None,
        sync_every: 1,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let workload = args.raw("workload").unwrap_or("churn").to_string();
    let n = args.get("n", 256usize);
    let events = args.get("events", 5_000usize);
    let batch = args.get("batch", 32usize).max(1);
    let preload: f64 = args.get("preload", 0.5);
    let fetch_bytes = args.get("fetch-bytes", 1u32 << 20);
    let kill_restart = args.get("kill-restart", 0u8) != 0;
    let seed = args.seed(41);

    let sc = scenario(&workload, n, events, seed);
    let split = ((events as f64 * preload.clamp(0.0, 1.0)) as usize).min(sc.events.len());
    let (head, tail) = sc.events.split_at(split);

    let master_dir = temp_dir("master");
    let replica_dir = temp_dir("replica");
    let mut master = DurableHealer::create(
        ForgivingGraph::from_graph(&sc.initial).unwrap(),
        &master_dir,
        opts(),
    )
    .unwrap();

    // Phase 0: pre-load history the replica will have to catch up on.
    let preload_start = Instant::now();
    for chunk in head.chunks(batch) {
        let _ = master.apply_batch(chunk).expect("legal trace");
    }
    let preload_seconds = preload_start.elapsed().as_secs_f64();

    let mut listener = ReplListener::bind("127.0.0.1:0", &master_dir).unwrap();

    // Phase 1: bootstrap + catch-up.
    let catchup_start = Instant::now();
    let (mut replica, _) =
        Replica::<ForgivingGraph>::bootstrap(listener.local_addr(), &replica_dir, opts()).unwrap();
    replica.max_fetch_bytes = fetch_bytes;
    let caught_up = replica.sync_to_caught_up().expect("catch-up sync");
    let catchup_seconds = catchup_start.elapsed().as_secs_f64();
    assert_eq!(caught_up, head.len(), "catch-up must stream the preload");

    // Phase 2: tail-follow, one replica sync round per master batch.
    // With --kill-restart the master dies (no checkpoint) halfway
    // through and is recovered from its own store directory.
    let kill_at = if kill_restart {
        tail.len() / 2
    } else {
        usize::MAX
    };
    let mut followed = 0usize;
    let mut rounds = 0usize;
    let mut restarts = 0usize;
    let follow_start = Instant::now();
    let mut applied_since_head = 0usize;
    for chunk in tail.chunks(batch) {
        if applied_since_head >= kill_at && restarts == 0 {
            drop(listener);
            drop(master);
            let (recovered, report) =
                DurableHealer::<ForgivingGraph>::open(&master_dir, opts()).unwrap();
            assert!(
                report.epoch >= replica.epoch(),
                "recovery must not lose acknowledged history"
            );
            master = recovered;
            listener = ReplListener::bind("127.0.0.1:0", &master_dir).unwrap();
            // The replica's socket died with the old listener; it
            // recovers its own store and re-attaches to the new port.
            drop(replica);
            let (reattached, report) =
                Replica::<ForgivingGraph>::bootstrap(listener.local_addr(), &replica_dir, opts())
                    .unwrap();
            assert_eq!(report.epoch, master.epoch(), "replica store is current");
            replica = reattached;
            replica.max_fetch_bytes = fetch_bytes;
            restarts = 1;
        }
        let _ = master.apply_batch(chunk).expect("legal trace");
        applied_since_head += chunk.len();
        loop {
            let progress = replica.sync_once().expect("follow sync");
            followed += progress.applied;
            rounds += 1;
            if progress.caught_up {
                break;
            }
        }
    }
    let follow_seconds = follow_start.elapsed().as_secs_f64();
    assert_eq!(followed, tail.len(), "follow must stream the whole tail");

    // The certificate gate: epochs and chains bit-identical, and both
    // equal to an independent in-memory replay on the other backend.
    assert_eq!(replica.epoch(), master.epoch(), "epoch divergence");
    assert_eq!(
        replica.chain_digest(),
        master.chain_digest(),
        "certificate chain divergence"
    );
    let mut golden = Publisher::new(DistHealer::from_graph(
        &sc.initial,
        PlacementPolicy::Adjacent,
    ));
    for chunk in sc.events.chunks(batch) {
        let _ = golden.apply_and_publish(chunk).expect("legal trace");
    }
    assert_eq!(
        golden.digest(),
        replica.chain_digest(),
        "dist-backend replay must chain to the same certificate"
    );

    let catchup_rps = head.len() as f64 / catchup_seconds.max(1e-9);
    let follow_rps = tail.len() as f64 / follow_seconds.max(1e-9);
    println!("repl_bench: {workload} n={n} events={events} batch={batch} seed={seed}");
    println!(
        "  preload  {:>7} records in {preload_seconds:.3}s",
        head.len()
    );
    println!(
        "  catch-up {:>7} records in {catchup_seconds:.3}s ({catchup_rps:.0} rec/s)",
        head.len()
    );
    println!(
        "  follow   {:>7} records in {follow_seconds:.3}s ({follow_rps:.0} rec/s, {rounds} rounds, {restarts} restarts)",
        tail.len()
    );
    println!(
        "  certified epoch {} chain {:016x} (master == replica == dist replay)",
        replica.epoch(),
        replica.chain_digest()
    );

    if let Some(path) = args.json_path() {
        let doc = Json::obj()
            .field(
                "config",
                Json::obj()
                    .field("workload", Json::str(&workload))
                    .field("n", Json::Int(n as i64))
                    .field("events", Json::Int(events as i64))
                    .field("batch", Json::Int(batch as i64))
                    .field("seed", Json::Int(seed as i64))
                    .field("fetch_bytes", Json::Int(fetch_bytes as i64))
                    .field("kill_restart", Json::Bool(kill_restart)),
            )
            .field(
                "phases",
                Json::obj()
                    .field("preload_records", Json::Int(head.len() as i64))
                    .field("preload_seconds", Json::Float(preload_seconds))
                    .field("catchup_records", Json::Int(head.len() as i64))
                    .field("catchup_seconds", Json::Float(catchup_seconds))
                    .field("catchup_records_per_sec", Json::Float(catchup_rps))
                    .field("follow_records", Json::Int(tail.len() as i64))
                    .field("follow_seconds", Json::Float(follow_seconds))
                    .field("follow_records_per_sec", Json::Float(follow_rps))
                    .field("follow_rounds", Json::Int(rounds as i64))
                    .field("restarts", Json::Int(restarts as i64)),
            )
            .field(
                "certificate",
                Json::obj()
                    .field("epoch", Json::Int(master.epoch() as i64))
                    .field(
                        "chain",
                        Json::str(format!("{:016x}", master.chain_digest())),
                    )
                    .field("replica_equal", Json::Bool(true))
                    .field("dist_replay_equal", Json::Bool(true)),
            );
        std::fs::write(path, doc.pretty()).expect("write json artifact");
    }

    drop(listener);
    let _ = std::fs::remove_dir_all(&master_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}

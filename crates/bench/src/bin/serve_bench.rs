//! serve_bench — closed-loop multi-client benchmark of the `fg-serve`
//! TCP serving subsystem.
//!
//! Builds the standard churn snapshot (replaying a scenario trace
//! through a [`fg_serve::Publisher`], one epoch publish per batch),
//! starts the threaded server on a loopback port, then hammers it with
//! `--clients` closed-loop clients, each pipelining `--pipeline`
//! requests per connection for `--duration` seconds. Every response's
//! `(epoch, digest)` stamp is checked against the published
//! certificate, per-request latencies land in a fixed log-bucket
//! histogram ([`fg_bench::LatencyHistogram`]), and a post-run
//! verification pass replays a fresh query stream through both the
//! socket and the in-process `QueryOps` tier, exiting nonzero on any
//! answer or stamp mismatch — the loopback differential gate CI runs.
//!
//! Flags (all optional): `--workload churn`, `--n <initial>`,
//! `--events <count>`, `--batch <publish grain>`, `--clients <k>`,
//! `--duration <secs>`, `--pipeline <depth>`, `--readers <threads>`,
//! `--backend engine|dist|both`, `--verify <queries>`,
//! `--query-mix dist:60,path:10,stretch:10,deg:10,comp:10`, plus the
//! shared `--seed` / `--query-seed` / `--json <path>`.

use fg_bench::json::Json;
use fg_bench::{
    answer_api, answers_agree, scenario, Answer, BenchArgs, LatencyHistogram, Query, QueryKind,
    QueryMix, QueryStream, QueryWorkload,
};
use fg_core::{GraphView, PlacementPolicy, SelfHealer};
use fg_dist::DistHealer;
use fg_graph::Graph;
use fg_metrics::{f2, Table};
use fg_serve::{Publisher, Request, ResponseBody, Server, ServerConfig};
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Everything the driver needs to know about one benchmark target.
struct BenchSetup {
    clients: usize,
    duration: Duration,
    pipeline: usize,
    readers: usize,
    verify: usize,
    wl: QueryWorkload,
}

/// One client thread's tally.
struct ClientTally {
    requests: u64,
    stamp_mismatches: u64,
    latency: LatencyHistogram,
}

/// What one backend's full run produced.
struct ServeRun {
    backend: String,
    epoch: u64,
    digest: u64,
    requests: u64,
    wall_seconds: f64,
    qps: f64,
    stamp_mismatches: u64,
    verify_queries: usize,
    verify_mismatches: usize,
    latency: LatencyHistogram,
    accepted: u64,
    served: u64,
    protocol_errors: u64,
    disconnects: u64,
}

fn query_request(q: &Query) -> Request {
    match q.kind {
        QueryKind::Distance => Request::Distance(q.u, q.v),
        QueryKind::Path => Request::Path(q.u, q.v),
        QueryKind::Stretch => Request::Stretch(q.u, q.v),
        QueryKind::Degree => Request::Degree(q.u),
        QueryKind::Component => Request::SameComponent(q.u, q.v),
    }
}

/// A served body as the bench's [`Answer`] type, so served answers run
/// through the same `answers_agree` comparator the in-process
/// differential runs use.
fn served_answer(body: ResponseBody) -> Answer {
    match body {
        ResponseBody::Distance(d) => Answer::Dist(d),
        ResponseBody::Path(p) => Answer::Path(p),
        ResponseBody::Stretch(s) => Answer::Stretch(s),
        ResponseBody::Degree(d) => Answer::Degree(d.map(|x| x as usize)),
        ResponseBody::SameComponent(c) => Answer::Component(c),
        ResponseBody::Epoch
        | ResponseBody::Neighbors(_)
        | ResponseBody::EventSubmitted
        | ResponseBody::BatchSubmitted(_) => {
            unreachable!("the bench mix never issues these ops")
        }
    }
}

/// One closed-loop client: connect, pipeline `depth` requests, then
/// recv-one/send-one until the deadline, draining in-flight requests at
/// the end. Responses arrive in request order, so latency pairing is a
/// FIFO of send instants.
fn run_client(
    addr: SocketAddr,
    queries: &[Query],
    depth: usize,
    deadline: Instant,
    expect_epoch: u64,
    expect_digest: u64,
) -> ClientTally {
    let mut client = fg_serve::Client::connect(addr).expect("bench client connect");
    let mut tally = ClientTally {
        requests: 0,
        stamp_mismatches: 0,
        latency: LatencyHistogram::new(),
    };
    let mut in_flight: VecDeque<(u64, Instant)> = VecDeque::with_capacity(depth);
    let mut next = 0usize;
    let send = |client: &mut fg_serve::Client,
                in_flight: &mut VecDeque<(u64, Instant)>,
                next: &mut usize| {
        let q = &queries[*next % queries.len()];
        *next += 1;
        let id = client.send(&query_request(q)).expect("bench send");
        in_flight.push_back((id, Instant::now()));
    };
    for _ in 0..depth.max(1) {
        send(&mut client, &mut in_flight, &mut next);
    }
    loop {
        let response = client.recv().expect("bench recv");
        let (id, sent_at) = in_flight.pop_front().expect("response without a request");
        assert_eq!(response.request_id, id, "pipelined responses must be FIFO");
        assert!(response.body.is_ok(), "bench queries are well-formed");
        tally.latency.record(sent_at.elapsed());
        tally.requests += 1;
        if response.epoch != expect_epoch || response.digest != expect_digest {
            tally.stamp_mismatches += 1;
        }
        if Instant::now() < deadline {
            send(&mut client, &mut in_flight, &mut next);
        } else if in_flight.is_empty() {
            return tally;
        }
    }
}

/// Replays the scenario through a publisher, serves it, and runs the
/// timed multi-client loop plus the verification pass.
fn bench_backend<H: SelfHealer>(
    label: &str,
    healer: H,
    sc: &fg_bench::Scenario,
    setup: &BenchSetup,
    batch: usize,
) -> ServeRun {
    let mut publisher = Publisher::new(healer);
    for chunk in sc.events.chunks(batch) {
        let _ = publisher
            .apply_and_publish(chunk)
            .expect("scenario traces are legal");
    }
    let hub = publisher.hub();
    let epoch = hub.epoch();
    let digest = publisher.digest();

    // The query pools are generated against the post-churn image before
    // the clock starts; each client gets its own deterministic stream.
    let image: &Graph = publisher.healer().image();
    let pools: Vec<Vec<Query>> = (0..setup.clients)
        .map(|i| {
            let mut wl = setup.wl.clone();
            wl.seed = wl.seed.wrapping_add(i as u64);
            QueryStream::new(&wl).block(image, 4096)
        })
        .collect();

    let server = Server::bind(
        ("127.0.0.1", 0),
        hub,
        ServerConfig {
            readers: setup.readers,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server");
    let addr = server.addr();

    let started = Instant::now();
    let deadline = started + setup.duration;
    let tallies: Vec<ClientTally> = std::thread::scope(|s| {
        let handles: Vec<_> = pools
            .iter()
            .map(|pool| {
                s.spawn(move || run_client(addr, pool, setup.pipeline, deadline, epoch, digest))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_seconds = started.elapsed().as_secs_f64();

    let mut latency = LatencyHistogram::new();
    let mut requests = 0u64;
    let mut stamp_mismatches = 0u64;
    for t in &tallies {
        latency.merge(&t.latency);
        requests += t.requests;
        stamp_mismatches += t.stamp_mismatches;
    }

    // Verification pass: a fresh deterministic stream through the socket
    // against the in-process QueryOps tier on the very same healer.
    let mut verify_client = fg_serve::Client::connect(addr).expect("verify client connect");
    let mut verify_stream = QueryStream::new(&setup.wl);
    let verify_block = verify_stream.block(image, setup.verify);
    let view = publisher.healer().view();
    let mut verify_mismatches = 0usize;
    for q in &verify_block {
        let stamped = verify_client
            .roundtrip(&query_request(q))
            .expect("verify roundtrip");
        if stamped.epoch != epoch || stamped.digest != digest {
            verify_mismatches += 1;
            continue;
        }
        let served = served_answer(stamped.value);
        let local = answer_api(&view, q);
        if !answers_agree(q, &served, &local, view.image()) {
            eprintln!(
                "{label}: mismatch on {:?}: served {served:?}, local {local:?}",
                q.kind
            );
            verify_mismatches += 1;
        }
    }
    drop(verify_client);

    let stats = server.stats();
    let run = ServeRun {
        backend: label.to_string(),
        epoch,
        digest,
        requests,
        wall_seconds,
        qps: fg_bench::rate(requests as f64, wall_seconds),
        stamp_mismatches,
        verify_queries: verify_block.len(),
        verify_mismatches,
        latency,
        accepted: stats.accepted(),
        served: stats.served(),
        protocol_errors: stats.protocol_errors(),
        disconnects: stats.disconnects(),
    };
    server.shutdown();
    run
}

impl ServeRun {
    fn to_json(&self, setup: &BenchSetup) -> Json {
        Json::obj()
            .field("backend", Json::str(&self.backend))
            .field("epoch", Json::Int(self.epoch as i64))
            .field("digest", Json::str(format!("{:016x}", self.digest)))
            .field("clients", Json::Int(setup.clients as i64))
            .field("readers", Json::Int(setup.readers as i64))
            .field("pipeline", Json::Int(setup.pipeline as i64))
            .field("duration_seconds", Json::Float(self.wall_seconds))
            .field("requests", Json::Int(self.requests as i64))
            .field("queries_per_sec", Json::Float(self.qps))
            .field("latency", self.latency.to_json())
            .field("stamp_mismatches", Json::Int(self.stamp_mismatches as i64))
            .field(
                "verify",
                Json::obj()
                    .field("queries", Json::Int(self.verify_queries as i64))
                    .field("mismatches", Json::Int(self.verify_mismatches as i64)),
            )
            .field(
                "server",
                Json::obj()
                    .field("accepted", Json::Int(self.accepted as i64))
                    .field("served", Json::Int(self.served as i64))
                    .field("protocol_errors", Json::Int(self.protocol_errors as i64))
                    .field("disconnects", Json::Int(self.disconnects as i64)),
            )
    }
}

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed(42);
    let n = args.scale_n(args.get("n", 1024usize));
    let events = args.get("events", 50_000usize);
    let batch = args.get("batch", 256usize);
    let name = args.get("workload", "churn".to_string());
    let backend = args.get("backend", "engine".to_string());
    let json_path = args.json_path().unwrap_or("BENCH_serve.json");
    let mix = match args.raw("query-mix") {
        Some(spec) => QueryMix::parse(spec).unwrap_or_else(|e| panic!("--query-mix {spec:?}: {e}")),
        None => QueryMix::parse("dist:60,path:10,stretch:10,deg:10,comp:10").expect("default mix"),
    };
    let mut wl = QueryWorkload::new(0);
    wl.mix = mix;
    wl.seed = args.query_seed(seed.wrapping_add(0x9e37));
    wl.hot = args.get("query-hot", 32usize);
    let setup = BenchSetup {
        clients: args.get("clients", 4usize).max(1),
        duration: Duration::from_secs_f64(args.get("duration", 2.0f64).max(0.05)),
        pipeline: args.get("pipeline", 16usize).max(1),
        readers: args.get("readers", 4usize).max(1),
        verify: args.get("verify", 500usize),
        wl,
    };

    let sc = scenario(&name, n, events, seed);
    let mut runs: Vec<ServeRun> = Vec::new();
    if backend == "engine" || backend == "both" {
        let fg = fg_core::ForgivingGraph::from_graph(&sc.initial).expect("fresh G0");
        runs.push(bench_backend("engine", fg, &sc, &setup, batch));
    }
    if backend == "dist" || backend == "both" {
        let net = DistHealer::from_graph(&sc.initial, PlacementPolicy::Adjacent);
        runs.push(bench_backend("fg-dist", net, &sc, &setup, batch));
    }
    assert!(!runs.is_empty(), "unknown --backend {backend:?}");

    let mut table = Table::new(
        &format!(
            "fg-serve — {name} n={n} {events} events, {} clients × pipeline {}, {} readers",
            setup.clients, setup.pipeline, setup.readers
        ),
        [
            "backend",
            "epoch",
            "requests",
            "q/s",
            "p50 µs",
            "p99 µs",
            "p999 µs",
            "stamp errs",
            "verify",
            "mismatches",
        ],
    );
    for run in &runs {
        table.push_row([
            run.backend.clone(),
            run.epoch.to_string(),
            run.requests.to_string(),
            format!("{:.0}", run.qps),
            f2(run.latency.quantile_ns(0.50) as f64 / 1e3),
            f2(run.latency.quantile_ns(0.99) as f64 / 1e3),
            f2(run.latency.quantile_ns(0.999) as f64 / 1e3),
            run.stamp_mismatches.to_string(),
            run.verify_queries.to_string(),
            run.verify_mismatches.to_string(),
        ]);
    }
    println!("{}", table.to_markdown());

    let config = Json::obj()
        .field("workload", Json::str(&name))
        .field("n", Json::Int(n as i64))
        .field("events", Json::Int(events as i64))
        .field("batch", Json::Int(batch as i64))
        .field("seed", Json::Int(seed as i64))
        .field("clients", Json::Int(setup.clients as i64))
        .field("pipeline", Json::Int(setup.pipeline as i64))
        .field("readers", Json::Int(setup.readers as i64))
        .field(
            "duration_seconds",
            Json::Float(setup.duration.as_secs_f64()),
        )
        .field("query_mix", Json::str(setup.wl.mix.spec()))
        .field("query_seed", Json::Int(setup.wl.seed as i64))
        .field("host_cpus", Json::Int(fg_bench::host_cpus() as i64));
    let report = Json::obj()
        .field("bench", Json::str("serve"))
        .field(
            "description",
            Json::str(
                "Closed-loop FGQ1 serving over epoch-pinned frozen snapshots; \
                 latencies are per-request (send to receive) under pipelining.",
            ),
        )
        .field("config", config)
        .field(
            "results",
            Json::Arr(runs.iter().map(|r| r.to_json(&setup)).collect()),
        );
    std::fs::write(json_path, report.pretty()).expect("writing benchmark JSON");
    eprintln!("wrote {json_path}");

    let bad: u64 = runs
        .iter()
        .map(|r| r.stamp_mismatches + r.verify_mismatches as u64)
        .sum();
    if bad > 0 {
        eprintln!("FAIL: {bad} served answers diverged from the in-process tier");
        std::process::exit(1);
    }
}

//! E1 — Theorem 1.1: degree increase stays within a constant factor of
//! the node's `G'` degree.
//!
//! Sweeps workload families, sizes, adversaries and both placement
//! policies, deleting half the nodes and measuring the worst and mean
//! `deg(v, G) / deg(v, G')`. The paper claims factor 3; this
//! implementation's provable envelope for the conference pseudocode is 4
//! (DESIGN.md §2) — the table quantifies how often anything above 3
//! actually appears.

use fg_adversary::{run_attack, Adversary, MaxDegreeDeleter, RandomDeleter};
use fg_bench::{engine, BenchArgs};
use fg_core::PlacementPolicy;
use fg_metrics::{degree_stats, f2, ratio_histogram, Table};

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed(7);
    let mut table = Table::new(
        "E1 — degree increase vs G' (Theorem 1.1; paper bound 3, hard envelope 4)",
        [
            "workload",
            "n",
            "adversary",
            "policy",
            "max ratio",
            "mean ratio",
            ">3 nodes",
            "ratio histogram ≤1|≤2|≤3|≤4|>4",
        ],
    );
    for &workload in &["star", "er", "ba", "grid"] {
        for &base in &[64usize, 256, 1024] {
            let n = args.scale_n(base);
            for adv_name in ["random", "max-degree"] {
                for policy in [PlacementPolicy::Adjacent, PlacementPolicy::PaperExact] {
                    let mut fg = engine(workload, n, seed, policy);
                    let floor = n / 2;
                    let mut random;
                    let mut maxdeg;
                    let adv: &mut dyn Adversary = if adv_name == "random" {
                        random = RandomDeleter::new(seed + 4, floor);
                        &mut random
                    } else {
                        maxdeg = MaxDegreeDeleter::new(floor);
                        &mut maxdeg
                    };
                    run_attack(&mut fg, adv, n).expect("attack is legal");
                    fg.check_invariants().expect("invariants hold");
                    let stats = degree_stats(fg.image(), fg.ghost());
                    let hist = ratio_histogram(fg.image(), fg.ghost());
                    table.push_row([
                        workload.to_string(),
                        n.to_string(),
                        adv_name.to_string(),
                        format!("{policy:?}"),
                        f2(stats.max_ratio),
                        f2(stats.mean_ratio),
                        stats.above_three.to_string(),
                        format!(
                            "{}|{}|{}|{}|{}",
                            hist[0], hist[1], hist[2], hist[3], hist[4]
                        ),
                    ]);
                }
            }
        }
    }
    args.emit(&[&table]);
}

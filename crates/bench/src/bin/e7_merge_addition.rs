//! E7 — Figure 5 / §4.1.2: merging hafts is binary addition.
//!
//! Reproduces the figure's example (5 + 2 + 1 = 8 gives a complete tree)
//! and then checks random multi-way merges: the result's primary-root
//! decomposition always equals the set bits of the summed leaf count, and
//! its depth is `⌈log₂ Σ⌉`.

use fg_bench::BenchArgs;
use fg_haft::{binary, ops, Haft};
use fg_metrics::Table;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = BenchArgs::parse();
    let mut table = Table::new(
        "E7 — merge ≡ binary addition (Figure 5)",
        [
            "inputs (leaf counts)",
            "sum",
            "sum binary",
            "result strip",
            "depth",
            "⌈log₂⌉",
            "ok",
        ],
    );

    // The figure's own example.
    let mut cases: Vec<Vec<usize>> = vec![vec![5, 2, 1]];
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed(42));
    for _ in 0..9 {
        let k = rng.gen_range(2..6);
        cases.push((0..k).map(|_| rng.gen_range(1..500)).collect());
    }

    let mut random_checks = 0usize;
    for _ in 0..500 {
        let k = rng.gen_range(2..7);
        let sizes: Vec<usize> = (0..k).map(|_| rng.gen_range(1..800)).collect();
        let total: usize = sizes.iter().sum();
        let merged = ops::merge(sizes.iter().map(|&s| Haft::build_from(0..s)).collect());
        assert_eq!(merged.leaf_count(), total);
        assert_eq!(merged.primary_root_sizes(), binary::set_bit_sizes(total));
        assert_eq!(merged.depth(), binary::expected_depth(total));
        merged.check_invariants().expect("valid haft");
        random_checks += 1;
    }

    for sizes in cases {
        let total: usize = sizes.iter().sum();
        let merged = ops::merge(sizes.iter().map(|&s| Haft::build_from(0..s)).collect());
        let ok = merged.primary_root_sizes() == binary::set_bit_sizes(total)
            && merged.depth() == binary::expected_depth(total);
        table.push_row([
            format!("{sizes:?}"),
            total.to_string(),
            format!("{total:b}"),
            format!("{:?}", merged.primary_root_sizes()),
            merged.depth().to_string(),
            binary::expected_depth(total).to_string(),
            ok.to_string(),
        ]);
    }
    args.emit(&[&table]);
    println!("({random_checks} additional random merges verified silently.)");
}

//! E4 — Theorem 2: any self-healer with degree factor α ≥ 3 must accept
//! stretch β ≥ ½·log₍α−1₎(n−1).
//!
//! The construction is the star: delete the hub and see what trade-off
//! each healer actually lands on. The Forgiving Graph's (α, β) must sit
//! above the lower-bound curve — and it does, within a ~2× factor of
//! optimal, matching the paper's "compares favorably" remark.

use fg_baselines::{BinaryTreeHealer, CliqueHealer, CycleHealer, StarHealer};
use fg_bench::BenchArgs;
use fg_core::{ForgivingGraph, SelfHealer};
use fg_graph::{generators, NodeId};
use fg_metrics::{degree_stats, f2, stretch_auto, Table};

fn theorem2_bound(alpha: f64, n: usize) -> f64 {
    if alpha <= 2.0 {
        return f64::INFINITY;
    }
    0.5 * ((n as f64) - 1.0).ln() / (alpha - 1.0).ln()
}

fn measure(healer: &mut dyn SelfHealer, n: usize, args: &BenchArgs, rows: &mut Table) {
    let _ = healer.delete(NodeId::new(0)).expect("hub is alive");
    let degree = degree_stats(healer.image(), healer.ghost());
    // All-pairs stretch is exact below the threshold; sampled above (the
    // clique healer's quadratic edge growth makes all-pairs BFS explode,
    // which is itself part of the finding).
    let stretch = stretch_auto(
        healer.image(),
        healer.ghost(),
        args.get("stretch-threshold", 512),
        args.get("stretch-samples", 24),
        args.seed(11),
    );
    let alpha = degree.max_ratio.max(3.0);
    let bound = theorem2_bound(alpha, n);
    rows.push_row([
        healer.name().to_string(),
        n.to_string(),
        f2(degree.max_ratio),
        f2(stretch.max),
        f2(bound),
        (stretch.max + 1e-9 >= bound.min(1.0)).to_string(),
    ]);
}

fn main() {
    let args = BenchArgs::parse();
    let mut table = Table::new(
        "E4 — Theorem 2 lower bound on the star (delete hub): β ≥ ½·log₍α−1₎(n−1)",
        [
            "healer",
            "n",
            "α (max deg ratio)",
            "β (max stretch)",
            "bound(α)",
            "≥ bound",
        ],
    );
    for &base in &[16usize, 64, 256, 1024, 4096] {
        let n = args.scale_n(base);
        let g = generators::star(n);
        let mut fg = ForgivingGraph::from_graph(&g).expect("fresh graph");
        measure(&mut fg, n, &args, &mut table);
        let mut bt = BinaryTreeHealer::from_graph(&g);
        measure(&mut bt, n, &args, &mut table);
        let mut cy = CycleHealer::from_graph(&g);
        measure(&mut cy, n, &args, &mut table);
        let mut st = StarHealer::from_graph(&g);
        measure(&mut st, n, &args, &mut table);
        if n <= 1024 {
            let mut cl = CliqueHealer::from_graph(&g);
            measure(&mut cl, n, &args, &mut table);
        }
    }
    args.emit(&[&table]);
    println!(
        "Reading: the cycle healer keeps α low but pays β = Θ(n); the star/clique healers \
         buy β ≤ 2 with unbounded α; the Forgiving Graph sits at α ≤ 3–4 with β ≤ ⌈log₂ n⌉, \
         within a small constant of the Theorem 2 curve."
    );
}

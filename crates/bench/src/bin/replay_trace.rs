//! Replays a dumped scenario trace (`throughput --trace-out`) and prints
//! one JSON line of throughput numbers — and, when asked to check the
//! replay, **exits nonzero on any mismatch** so CI and scripts can gate
//! on it (a silently-successful mismatch report is worse than a crash).
//!
//! Usage: `replay_trace <trace-file> [runs] [flags]`
//!
//! Flags:
//! * `--verify dist` — additionally replay the trace through the
//!   distributed protocol in lockstep with the engine, comparing the
//!   typed outcome of **every** event; the first report mismatch prints
//!   to stderr and exits with status 1.
//! * `--threads <w>` — executor width for the `--verify` replay.
//! * `--expect-digest <path>` — compare the engine's per-event outcome
//!   digests against a recorded digest file; the first drift prints to
//!   stderr and exits with status 2.
//! * `--digest-out <path>` — write the engine's digest stream (the format
//!   `--expect-digest` and the golden corpus consume; the digest files
//!   are always the *engine's* reference stream — `--verify dist` is how
//!   the protocol is checked against it).
//!
//! Unknown flags are an error: a gate whose misspelled check silently
//! never runs would pass vacuously.
//!
//! Exit status: 0 = replay ok (and all requested checks passed),
//! 1 = report mismatch between engine and protocol, 2 = digest drift
//! against the recorded file.

use fg_bench::json::Json;
use fg_bench::replay::{
    first_digest_drift, format_digest_file, parse_digest_file, replay_digests,
    verify_engine_vs_dist, ReplayBackend,
};
use fg_bench::Scenario;
use fg_core::ForgivingGraph;
use std::time::Instant;

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut flags: Vec<(String, String)> = Vec::new();
    const KNOWN: &[&str] = &["verify", "threads", "expect-digest", "digest-out"];
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            assert!(
                KNOWN.contains(&name),
                "unknown flag --{name}; known: {KNOWN:?}"
            );
            let value = iter
                .next()
                .unwrap_or_else(|| panic!("flag --{name} needs a value"));
            flags.push((name.to_string(), value));
        } else {
            positional.push(arg);
        }
    }
    let flag = |name: &str| {
        flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    let path = positional
        .first()
        .cloned()
        .expect("usage: replay_trace <trace-file> [runs] [--verify dist] [--expect-digest f]");
    let runs: usize = positional.get(1).map_or(3, |r| r.parse().expect("runs"));
    let threads: usize = flag("threads").map_or(1, |t| t.parse().expect("--threads"));

    let text = std::fs::read_to_string(&path).expect("readable trace file");
    let sc = Scenario::read_trace(&path, &text);

    // Requested checks run before the timing loop: a broken replay must
    // fail loudly, not publish throughput numbers.
    if let Some(backend) = flag("verify") {
        assert_eq!(backend, "dist", "--verify supports exactly: dist");
        match verify_engine_vs_dist(&sc, threads) {
            Ok(events) => eprintln!("verify: {events} events, engine == dist ({threads} threads)"),
            Err(mismatch) => {
                eprintln!("verify FAILED: {mismatch}");
                std::process::exit(1);
            }
        }
    }
    if flag("expect-digest").is_some() || flag("digest-out").is_some() {
        let digests =
            replay_digests(&sc, ReplayBackend::Engine).expect("legal trace replays cleanly");
        if let Some(out) = flag("digest-out") {
            let header = format!("trace {path}\nevents {}", sc.events.len());
            std::fs::write(out, format_digest_file(&header, &digests))
                .expect("writing --digest-out");
            eprintln!("wrote {} digests to {out}", digests.len());
        }
        if let Some(expect) = flag("expect-digest") {
            let recorded =
                parse_digest_file(&std::fs::read_to_string(expect).expect("readable digest file"));
            if let Some((index, want, got)) = first_digest_drift(&recorded, &digests) {
                eprintln!(
                    "digest drift at event {index}: recorded {want:016x}, replay produced \
                     {got:016x} ({expect})"
                );
                std::process::exit(2);
            }
            eprintln!("digests match {expect} ({} events)", recorded.len());
        }
    }

    let mut best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let mut fg = ForgivingGraph::from_graph(&sc.initial).expect("fresh G0");
        let start = Instant::now();
        for event in &sc.events {
            fg.apply(event).expect("legal trace event");
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    let line = Json::obj()
        .field("trace", Json::str(&path))
        .field("events", Json::Int(sc.events.len() as i64))
        .field("runs", Json::Int(runs as i64))
        .field("host_cpus", Json::Int(fg_bench::host_cpus() as i64))
        .field("best_wall_seconds", Json::Float(best))
        .field(
            "events_per_sec",
            Json::Float(fg_bench::rate(sc.events.len() as f64, best)),
        );
    println!("{}", line.compact());
}

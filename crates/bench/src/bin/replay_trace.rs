//! Replays a dumped scenario trace (`throughput --trace-out`) through the
//! sequential engine and prints one JSON line of throughput numbers.
//!
//! Usage: `replay_trace <trace-file> [runs]`
//!
//! Deliberately self-contained (std-only parsing, no fg-bench helpers) so
//! the identical source compiles against older revisions of the
//! workspace — this is the apples-to-apples driver behind the
//! old-layout vs arena-layout numbers in `BENCH_throughput.json`.

use fg_core::{ForgivingGraph, NetworkEvent};
use fg_graph::{Graph, NodeId};
use std::time::Instant;

fn parse(text: &str) -> (Graph, Vec<NetworkEvent>) {
    let mut g = Graph::new();
    let mut events = Vec::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let tag = match parts.next() {
            Some(t) => t,
            None => continue,
        };
        let ids: Vec<u32> = parts.map(|p| p.parse().expect("numeric field")).collect();
        match tag {
            "n" => {
                while g.nodes_ever() < ids[0] as usize {
                    g.add_node();
                }
            }
            "e" => {
                g.add_edge(NodeId::new(ids[0]), NodeId::new(ids[1]))
                    .expect("simple trace edge");
            }
            "I" => events.push(NetworkEvent::insert(ids.into_iter().map(NodeId::new))),
            "D" => events.push(NetworkEvent::delete(NodeId::new(ids[0]))),
            other => panic!("unknown trace tag {other:?}"),
        }
    }
    (g, events)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .expect("usage: replay_trace <trace-file> [runs]");
    let runs: usize = args.next().map_or(3, |r| r.parse().expect("runs"));
    let text = std::fs::read_to_string(&path).expect("readable trace file");
    let (g0, events) = parse(&text);

    let mut best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let mut fg = ForgivingGraph::from_graph(&g0).expect("fresh G0");
        let start = Instant::now();
        for event in &events {
            fg.apply(event).expect("legal trace event");
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    println!(
        "{{\"trace\": \"{path}\", \"events\": {}, \"runs\": {runs}, \"best_wall_seconds\": {best}, \"events_per_sec\": {}}}",
        events.len(),
        events.len() as f64 / best
    );
}

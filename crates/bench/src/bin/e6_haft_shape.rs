//! E6 — Lemma 1 / Figure 3: the shape of half-full trees.
//!
//! For a sweep of leaf counts: the haft is unique, its depth is exactly
//! `⌈log₂ l⌉`, and stripping yields one complete tree per set bit of `l`.
//! All three properties are checked exhaustively for `l ≤ 4096` and
//! reported for landmark sizes.

use fg_bench::{ceil_log2, BenchArgs};
use fg_haft::{binary, ops, Haft};
use fg_metrics::Table;

fn main() {
    let args = BenchArgs::parse();
    // Exhaustive verification first.
    let cap = args.scale_n(4096);
    let mut verified = 0usize;
    for l in 1..=cap {
        let h = Haft::build_from(0..l);
        assert_eq!(h.depth(), binary::expected_depth(l), "depth at l = {l}");
        assert_eq!(h.primary_root_sizes(), binary::set_bit_sizes(l));
        h.check_invariants().expect("valid haft");
        let forest = ops::strip(h);
        assert_eq!(forest.len(), l.count_ones() as usize);
        verified += 1;
    }

    let mut table = Table::new(
        &format!("E6 — haft shape (Lemma 1; {verified} sizes verified exhaustively)"),
        [
            "l (leaves)",
            "binary",
            "depth",
            "⌈log₂ l⌉",
            "strip sizes",
            "spine nodes",
        ],
    );
    for &l in &[1usize, 7, 8, 13, 100, 1000, 1024, 4095, 4096, 65535] {
        let h = Haft::build_from(0..l);
        let sizes = h.primary_root_sizes();
        table.push_row([
            l.to_string(),
            format!("{l:b}"),
            h.depth().to_string(),
            ceil_log2(l).min(binary::expected_depth(l)).to_string(),
            format!("{sizes:?}"),
            binary::spine_len(l).to_string(),
        ]);
    }
    args.emit(&[&table]);
}

//! E10 — Lemma 3: helper accounting.
//!
//! At rest, every slot (processor, `G'`-edge) simulates at most one
//! helper, so a processor's helper count never exceeds its count of dead
//! neighbours; and the representative cache never goes stale (zero
//! fallbacks). Measured over heavy churn on several workloads.

use fg_adversary::{run_attack, ChurnAdversary, MaxDegreeDeleter};
use fg_bench::{engine, BenchArgs};
use fg_core::PlacementPolicy;
use fg_graph::NodeId;
use fg_metrics::Table;
use std::collections::BTreeMap;

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed(17);
    let mut table = Table::new(
        "E10 — helper accounting (Lemma 3): ≤ 1 helper per slot, rep cache never stale",
        [
            "workload",
            "n",
            "attack",
            "helpers",
            "max helpers/proc",
            "max dead nbrs",
            "slot violations",
            "rep fallbacks",
        ],
    );
    for &(workload, base) in &[("er", 128usize), ("ba", 128), ("star", 64)] {
        let n = args.scale_n(base);
        for attack in ["churn", "hubs"] {
            let mut fg = engine(workload, n, seed, PlacementPolicy::Adjacent);
            if attack == "churn" {
                let mut adv = ChurnAdversary::new(seed.wrapping_sub(14), 0.55, 3, 8, 3 * n);
                run_attack(&mut fg, &mut adv, 3 * n).expect("attack is legal");
            } else {
                let mut adv = MaxDegreeDeleter::new(n / 4);
                run_attack(&mut fg, &mut adv, n).expect("attack is legal");
            }
            fg.check_invariants().expect("invariants hold");

            // Count helpers per processor and dead neighbours per processor.
            let mut helpers: BTreeMap<NodeId, usize> = BTreeMap::new();
            let mut violations = 0usize;
            for (key, _) in fg.forest().iter() {
                if key.is_helper() {
                    *helpers.entry(key.owner()).or_default() += 1;
                    // Slot uniqueness is structural (one key per slot) —
                    // a violation would mean the same (owner, other)
                    // appearing twice, which the map cannot represent;
                    // check the leaf exists instead (Lemma 3's coupling).
                    if !fg.forest().contains(key.slot.real()) {
                        violations += 1;
                    }
                }
            }
            let max_helpers = helpers.values().copied().max().unwrap_or(0);
            let max_dead = fg
                .image()
                .iter()
                .map(|v| fg.ghost().neighbors(v).filter(|&x| !fg.is_alive(x)).count())
                .max()
                .unwrap_or(0);
            assert!(max_helpers <= max_dead.max(1), "Lemma 3.1 violated");
            table.push_row([
                workload.to_string(),
                n.to_string(),
                attack.to_string(),
                helpers.values().sum::<usize>().to_string(),
                max_helpers.to_string(),
                max_dead.to_string(),
                violations.to_string(),
                fg.stats().rep_fallbacks.to_string(),
            ]);
        }
    }
    args.emit(&[&table]);
}

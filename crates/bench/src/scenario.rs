//! The ScenarioRunner: named end-to-end workloads driven through any
//! [`SelfHealer`] with batched event ingestion and throughput accounting.
//!
//! A [`Scenario`] is an initial graph plus a pre-generated adversarial
//! event trace. Traces are produced by a *healer-independent* bookkeeper
//! (its own liveness table and insert-only degree counts), so the same
//! trace can be replayed against the sequential engine, the distributed
//! protocol and every baseline — and, because generation is excluded from
//! the timed region, throughput numbers measure the healer alone.
//!
//! The registry ([`WORKLOADS`], [`scenario`]) names the standard families:
//!
//! | name                 | shape                                               |
//! |----------------------|-----------------------------------------------------|
//! | `star`               | star-smash rounds: grow spokes onto a victim, kill it |
//! | `er`                 | sparse Erdős–Rényi under random deletions + refills |
//! | `ba`                 | Barabási–Albert under alternating hub kills/growth  |
//! | `churn`              | p2p membership churn: 50/50 insert/delete, fan ≤ 3  |
//! | `hub-cascade`        | targeted attack: always kill the max-degree node    |
//! | `preferential-churn` | churn whose inserts attach degree-proportionally    |
//! | `partition-then-heal`| two clusters, bridge nodes killed first, then churn |

use crate::json::Json;
use crate::queries::{
    answer_api, answer_cached, answer_frozen, answer_naive, answers_agree, QueryStats, QueryStream,
    QueryWorkload,
};
use fg_core::{EngineError, GraphView, HealerObserver, NetworkEvent, QueryCache, SelfHealer};
use fg_graph::{Graph, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// The registered workload names, in registry order.
pub const WORKLOADS: &[&str] = &[
    "star",
    "er",
    "ba",
    "churn",
    "hub-cascade",
    "preferential-churn",
    "partition-then-heal",
];

/// An initial network plus a recorded adversarial trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Registry name this scenario was built from.
    pub name: String,
    /// Base size parameter (initial node count).
    pub n: usize,
    /// Trace seed.
    pub seed: u64,
    /// The starting network `G_0`.
    pub initial: Graph,
    /// The adversarial events, in order.
    pub events: Vec<NetworkEvent>,
}

impl Scenario {
    /// Number of deletion events in the trace.
    pub fn deletions(&self) -> usize {
        self.events.iter().filter(|e| e.is_delete()).count()
    }

    /// Serialises the scenario as a line-oriented trace file
    /// (`n <nodes>` / `e <u> <v>` / `I <nbr>...` / `D <victim>`), the
    /// format [`Scenario::read_trace`] and the old-ref replay driver parse.
    pub fn to_trace(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("n {}\n", self.initial.nodes_ever()));
        for e in self.initial.edges() {
            out.push_str(&format!("e {} {}\n", e.lo().raw(), e.hi().raw()));
        }
        for event in &self.events {
            match event {
                NetworkEvent::Insert { neighbors } => {
                    out.push('I');
                    for x in neighbors {
                        out.push_str(&format!(" {}", x.raw()));
                    }
                    out.push('\n');
                }
                NetworkEvent::Delete { node } => {
                    out.push_str(&format!("D {}\n", node.raw()));
                }
            }
        }
        out
    }

    /// Parses a trace produced by [`Scenario::to_trace`].
    ///
    /// # Panics
    ///
    /// Panics on malformed lines — traces are machine-written artifacts.
    pub fn read_trace(name: &str, text: &str) -> Scenario {
        let mut initial = Graph::new();
        let mut events = Vec::new();
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            let tag = match parts.next() {
                Some(t) => t,
                None => continue,
            };
            let ids: Vec<u32> = parts.map(|p| p.parse().expect("numeric field")).collect();
            match tag {
                "n" => {
                    while initial.nodes_ever() < ids[0] as usize {
                        initial.add_node();
                    }
                }
                "e" => {
                    initial
                        .add_edge(NodeId::new(ids[0]), NodeId::new(ids[1]))
                        .expect("trace edges are simple");
                }
                "I" => events.push(NetworkEvent::insert(ids.into_iter().map(NodeId::new))),
                "D" => events.push(NetworkEvent::delete(NodeId::new(ids[0]))),
                other => panic!("unknown trace tag {other:?}"),
            }
        }
        let n = initial.nodes_ever();
        Scenario {
            name: name.to_string(),
            n,
            seed: 0,
            initial,
            events,
        }
    }
}

/// Healer-independent trace bookkeeping: liveness and insert-only degrees,
/// updated as events are recorded, so strategies can pick legal victims
/// and attachment targets without consulting any healer.
struct TraceBuilder {
    rng: ChaCha8Rng,
    /// Live node ids, unordered (swap-removed); picks index into this.
    alive: Vec<NodeId>,
    /// Position of each node in `alive`, or `usize::MAX` once dead.
    pos: Vec<usize>,
    /// Insert-only (`G'`) degree per node — deletions do not decrease it.
    ghost_deg: Vec<u32>,
    events: Vec<NetworkEvent>,
}

impl TraceBuilder {
    fn from_graph(g: &Graph, seed: u64) -> Self {
        let n = g.nodes_ever();
        TraceBuilder {
            rng: ChaCha8Rng::seed_from_u64(seed),
            alive: g.iter().collect(),
            pos: (0..n).collect(),
            ghost_deg: (0..n)
                .map(|i| g.degree(NodeId::new(i as u32)) as u32)
                .collect(),
            events: Vec::new(),
        }
    }

    fn alive_count(&self) -> usize {
        self.alive.len()
    }

    fn record_insert(&mut self, neighbors: Vec<NodeId>) {
        let v = NodeId::new(self.pos.len() as u32);
        self.pos.push(self.alive.len());
        self.alive.push(v);
        self.ghost_deg.push(neighbors.len() as u32);
        for &x in &neighbors {
            self.ghost_deg[x.index()] += 1;
        }
        self.events.push(NetworkEvent::insert(neighbors));
    }

    fn record_delete(&mut self, v: NodeId) {
        let p = self.pos[v.index()];
        assert_ne!(p, usize::MAX, "deleting a dead node");
        let last = *self.alive.last().expect("non-empty alive list");
        self.alive.swap_remove(p);
        if last != v {
            self.pos[last.index()] = p;
        }
        self.pos[v.index()] = usize::MAX;
        self.events.push(NetworkEvent::delete(v));
    }

    fn random_alive(&mut self) -> NodeId {
        self.alive[self.rng.gen_range(0..self.alive.len())]
    }

    /// A live node sampled proportionally to `ghost_deg + 1`.
    fn weighted_alive(&mut self) -> NodeId {
        let total: u64 = self
            .alive
            .iter()
            .map(|&v| u64::from(self.ghost_deg[v.index()]) + 1)
            .sum();
        let mut pick = self.rng.gen_range(0..total);
        for &v in &self.alive {
            let w = u64::from(self.ghost_deg[v.index()]) + 1;
            if pick < w {
                return v;
            }
            pick -= w;
        }
        unreachable!("weights cover the range")
    }

    /// The live node with the largest insert-only degree (ties: smallest id).
    fn max_degree_alive(&self) -> NodeId {
        *self
            .alive
            .iter()
            .max_by_key(|&&v| (self.ghost_deg[v.index()], std::cmp::Reverse(v)))
            .expect("non-empty alive list")
    }

    /// Up to `fan` distinct live attachment targets.
    fn pick_neighbors(&mut self, fan: usize, weighted: bool) -> Vec<NodeId> {
        let fan = fan.min(self.alive.len());
        let mut chosen: Vec<NodeId> = Vec::with_capacity(fan);
        let mut guard = 0;
        while chosen.len() < fan && guard < 20 * fan + 20 {
            guard += 1;
            let v = if weighted {
                self.weighted_alive()
            } else {
                self.random_alive()
            };
            if !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        chosen
    }
}

/// Builds a named scenario: `n` initial nodes, exactly `events` adversarial
/// steps, all randomness drawn from `seed`.
///
/// # Panics
///
/// Panics on an unregistered name; see [`WORKLOADS`].
pub fn scenario(name: &str, n: usize, events: usize, seed: u64) -> Scenario {
    let n = n.max(8);
    let (initial, tb) = match name {
        "star" => {
            let g = fg_graph::generators::star(n);
            let mut tb = TraceBuilder::from_graph(&g, seed);
            // Star-smash rounds: kill the hub, then grow spokes onto a
            // random survivor and kill it, forever.
            tb.record_delete(NodeId::new(0));
            while tb.events.len() < events {
                let victim = tb.random_alive();
                for _ in 0..4 {
                    if tb.events.len() + 1 >= events {
                        break;
                    }
                    tb.record_insert(vec![victim]);
                }
                tb.record_delete(victim);
            }
            (g, tb)
        }
        "er" => {
            let g = fg_graph::generators::connected_erdos_renyi(n, 8.0 / n as f64, seed);
            let mut tb = TraceBuilder::from_graph(&g, seed ^ 0x5bd1e995);
            while tb.events.len() < events {
                if tb.alive_count() > n / 2 {
                    let v = tb.random_alive();
                    tb.record_delete(v);
                } else {
                    let nbrs = tb.pick_neighbors(2, false);
                    tb.record_insert(nbrs);
                }
            }
            (g, tb)
        }
        "ba" => {
            let g = fg_graph::generators::barabasi_albert(n, 2, seed);
            let mut tb = TraceBuilder::from_graph(&g, seed ^ 0x9e3779b9);
            let mut step = 0usize;
            while tb.events.len() < events {
                if step.is_multiple_of(2) && tb.alive_count() > n / 2 {
                    let v = tb.max_degree_alive();
                    tb.record_delete(v);
                } else {
                    let nbrs = tb.pick_neighbors(2, true);
                    tb.record_insert(nbrs);
                }
                step += 1;
            }
            (g, tb)
        }
        "churn" => {
            let g = fg_graph::generators::connected_erdos_renyi(n, 8.0 / n as f64, seed);
            let mut tb = TraceBuilder::from_graph(&g, seed ^ 0xc2b2ae35);
            let floor = (n / 2).max(8);
            while tb.events.len() < events {
                if tb.alive_count() > floor && tb.rng.gen_bool(0.5) {
                    let v = tb.random_alive();
                    tb.record_delete(v);
                } else {
                    let fan = tb.rng.gen_range(1..=3usize);
                    let nbrs = tb.pick_neighbors(fan, false);
                    tb.record_insert(nbrs);
                }
            }
            (g, tb)
        }
        "hub-cascade" => {
            let g = fg_graph::generators::barabasi_albert(n, 2, seed);
            let mut tb = TraceBuilder::from_graph(&g, seed ^ 0x27d4eb2f);
            while tb.events.len() < events {
                if tb.alive_count() <= (n / 2).max(8) {
                    let nbrs = tb.pick_neighbors(2, true);
                    tb.record_insert(nbrs);
                } else {
                    let v = tb.max_degree_alive();
                    tb.record_delete(v);
                }
            }
            (g, tb)
        }
        "preferential-churn" => {
            let g = fg_graph::generators::barabasi_albert(n, 2, seed);
            let mut tb = TraceBuilder::from_graph(&g, seed ^ 0x165667b1);
            let floor = (n / 2).max(8);
            while tb.events.len() < events {
                if tb.alive_count() > floor && tb.rng.gen_bool(0.5) {
                    let v = tb.random_alive();
                    tb.record_delete(v);
                } else {
                    let fan = tb.rng.gen_range(1..=3usize);
                    let nbrs = tb.pick_neighbors(fan, true);
                    tb.record_insert(nbrs);
                }
            }
            (g, tb)
        }
        "partition-then-heal" => {
            let g = partition_graph(n, seed);
            let mut tb = TraceBuilder::from_graph(&g, seed ^ 0x85ebca6b);
            // Phase 1: kill every bridge node (ids n..nodes_ever), the
            // articulation points whose loss forces the largest repairs.
            let bridges: Vec<NodeId> = ((n as u32)..(g.nodes_ever() as u32))
                .map(NodeId::new)
                .collect();
            for b in bridges {
                if tb.events.len() < events {
                    tb.record_delete(b);
                }
            }
            // Phase 2: churn over the healed (re-joined) network.
            let floor = (n / 2).max(8);
            while tb.events.len() < events {
                if tb.alive_count() > floor && tb.rng.gen_bool(0.5) {
                    let v = tb.random_alive();
                    tb.record_delete(v);
                } else {
                    let fan = tb.rng.gen_range(2..=3usize);
                    let nbrs = tb.pick_neighbors(fan, false);
                    tb.record_insert(nbrs);
                }
            }
            (g, tb)
        }
        other => panic!("unknown workload {other:?}; registered: {WORKLOADS:?}"),
    };
    let mut events_vec = tb.events;
    events_vec.truncate(events);
    Scenario {
        name: name.to_string(),
        n,
        seed,
        initial,
        events: events_vec,
    }
}

/// Two ER clusters of `n/2` nodes each, joined only through
/// `max(2, n/32)` bridge nodes appended after them (one edge into each
/// side) — the `partition-then-heal` starting topology.
fn partition_graph(n: usize, seed: u64) -> Graph {
    let half = (n / 2).max(4);
    let a = fg_graph::generators::connected_erdos_renyi(half, 8.0 / half as f64, seed);
    let b = fg_graph::generators::connected_erdos_renyi(half, 8.0 / half as f64, seed ^ 1);
    let mut g = Graph::with_nodes(2 * half);
    for e in a.edges() {
        g.add_edge(e.lo(), e.hi()).expect("cluster A edge");
    }
    let off = half as u32;
    for e in b.edges() {
        g.add_edge(
            NodeId::new(e.lo().raw() + off),
            NodeId::new(e.hi().raw() + off),
        )
        .expect("cluster B edge");
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xdeadbeef);
    for _ in 0..(n / 32).max(2) {
        let bridge = g.add_node();
        let left = NodeId::new(rng.gen_range(0..off));
        let right = NodeId::new(off + rng.gen_range(0..off));
        g.add_edge(bridge, left).expect("bridge edge");
        g.add_edge(bridge, right).expect("bridge edge");
    }
    g
}

/// Throughput/latency accounting for one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Scenario name.
    pub scenario: String,
    /// `SelfHealer::name()` of the driven backend.
    pub backend: String,
    /// Events applied.
    pub events: usize,
    /// Deletions among them.
    pub deletes: usize,
    /// Events per ingestion batch.
    pub batch_size: usize,
    /// Total wall-clock seconds over all batches.
    pub wall_seconds: f64,
    /// `events / wall_seconds`.
    pub events_per_sec: f64,
    /// Mean per-batch latency in milliseconds.
    pub mean_batch_ms: f64,
    /// Worst per-batch latency in milliseconds.
    pub max_batch_ms: f64,
    /// Live nodes after the run.
    pub final_nodes: usize,
    /// Live edges after the run.
    pub final_edges: usize,
    /// The paper's `n` (nodes ever seen) after the run.
    pub nodes_ever: usize,
    /// Executor width the backend ran at (1 = sequential; >1 = the
    /// distributed backend's work-sharded round executor). Purely a
    /// wall-clock knob — results are bit-identical at any width.
    pub threads: usize,
    /// Image edge units added over the run (from the batch reports).
    pub edges_added: u64,
    /// Image edge units dropped over the run.
    pub edges_dropped: u64,
    /// Helpers created across all repairs.
    pub helpers_created: u64,
    /// Worst single-repair virtual-node churn of the run.
    pub max_churn: u64,
    /// Worst `churn / (d·⌈log₂ n⌉)` — the aggregate Theorem 1.3 envelope.
    pub max_normalized_churn: f64,
}

impl RunResult {
    /// The result as a JSON object for `BENCH_*.json` reports.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("scenario", Json::str(&self.scenario))
            .field("backend", Json::str(&self.backend))
            .field("events", Json::Int(self.events as i64))
            .field("deletes", Json::Int(self.deletes as i64))
            .field("batch_size", Json::Int(self.batch_size as i64))
            .field("wall_seconds", Json::Float(self.wall_seconds))
            .field("events_per_sec", Json::Float(self.events_per_sec))
            .field("mean_batch_ms", Json::Float(self.mean_batch_ms))
            .field("max_batch_ms", Json::Float(self.max_batch_ms))
            .field("final_nodes", Json::Int(self.final_nodes as i64))
            .field("final_edges", Json::Int(self.final_edges as i64))
            .field("nodes_ever", Json::Int(self.nodes_ever as i64))
            .field("threads", Json::Int(self.threads as i64))
            .field("edges_added", Json::Int(self.edges_added as i64))
            .field("edges_dropped", Json::Int(self.edges_dropped as i64))
            .field("helpers_created", Json::Int(self.helpers_created as i64))
            .field("max_churn", Json::Int(self.max_churn as i64))
            .field(
                "max_normalized_churn",
                Json::Float(self.max_normalized_churn),
            )
    }
}

/// A [`RunResult`] plus the read-side measurements of the interleaved
/// query workload — what [`ScenarioRunner::run_mixed`] returns.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedRunResult {
    /// Write-side throughput, identical in shape to a plain run.
    pub run: RunResult,
    /// Read-side throughput, cache behaviour, and the differential
    /// verdict.
    pub queries: QueryStats,
}

impl MixedRunResult {
    /// The combined JSON object: the run's fields plus a `queries`
    /// sub-object.
    pub fn to_json(&self) -> Json {
        self.run.to_json().field("queries", self.queries.to_json())
    }
}

/// Drives scenarios through healers in timed batches.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioRunner {
    /// Events per ingestion batch (also the latency-measurement grain).
    pub batch_size: usize,
    /// Executor width recorded into every [`RunResult`] (the caller
    /// constructs the backend at this width; the runner only reports it).
    pub threads: usize,
}

impl ScenarioRunner {
    /// A runner with the given batch size (clamped to ≥ 1), reporting
    /// sequential (width-1) execution.
    pub fn new(batch_size: usize) -> Self {
        ScenarioRunner {
            batch_size: batch_size.max(1),
            threads: 1,
        }
    }

    /// The same runner, recording `threads` (clamped to ≥ 1) as the
    /// executor width of the backends it drives.
    pub fn with_threads(self, threads: usize) -> Self {
        ScenarioRunner {
            threads: threads.max(1),
            ..self
        }
    }

    /// Replays `scenario` through `healer`, timing each ingestion batch
    /// (observers off — the healer's unobserved fast path). Only event
    /// application is timed — trace generation happened when the scenario
    /// was built. Per-op telemetry is folded from the batch reports into
    /// the result's aggregate fields.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EngineError`]; scenario traces are legal by
    /// construction, so an error indicates a healer bug.
    pub fn run(
        &self,
        scenario: &Scenario,
        healer: &mut dyn SelfHealer,
    ) -> Result<RunResult, EngineError> {
        // `apply_batch` (not `apply_batch_observed` with a no-op): the
        // engine's unobserved path monomorphizes its callbacks away, and
        // this is the entry point the throughput trajectory measures.
        self.run_inner(scenario, healer, |h, batch| h.apply_batch(batch))
    }

    /// [`ScenarioRunner::run`] with a streaming observer riding along
    /// (inside the timed region — observers have a cost only when used).
    ///
    /// # Errors
    ///
    /// Same as [`ScenarioRunner::run`].
    pub fn run_observed(
        &self,
        scenario: &Scenario,
        healer: &mut dyn SelfHealer,
        obs: &mut dyn HealerObserver,
    ) -> Result<RunResult, EngineError> {
        self.run_inner(scenario, healer, |h, batch| {
            h.apply_batch_observed(batch, &mut *obs)
        })
    }

    /// Replays `scenario` while serving an interleaved read workload:
    /// after every timed write batch, the proportional share of `wl`'s
    /// queries runs against the healer's [`view`](SelfHealer::view)
    /// through **four** read paths — the landmark [`QueryCache`]
    /// (invalidated/repaired incrementally from the batch's typed
    /// outcomes), the [`fg_core::FrozenQueryCache`] serving tier (one
    /// image-only CSR publish per batch, dense bitset-BFS landmark
    /// memos, persistent ghost landmarks maintained from the same typed
    /// outcomes; publishes and maintenance timed into their own
    /// buckets), the uncached `QueryOps` API (per-query bidirectional
    /// BFS), and the naive baseline (one fresh full single-source BFS
    /// per query, what reads cost before the query API existed). Each
    /// pass is timed separately and every answer tuple is compared, so
    /// the returned [`QueryStats`] carry both speedups *and* a
    /// differential verdict (`mismatches`, always 0). Frozen scalar
    /// answers must *equal* the cached ones; frozen paths must agree
    /// per `answers_agree` (equally short, valid edges — the tier's
    /// resident landmarks may pick a different gradient source).
    ///
    /// Write batches are timed exactly as in [`ScenarioRunner::run`]
    /// (query work happens strictly between batches), so the write-side
    /// `events_per_sec` stays comparable across plain and mixed runs.
    /// Cache maintenance (`note_batch`) is timed into its own bucket
    /// ([`QueryStats::maintain_seconds`]) and charged to the cached
    /// path's `queries_per_sec`, so the reported speedups include the
    /// full price of serving cached.
    ///
    /// # Errors
    ///
    /// Same as [`ScenarioRunner::run`].
    pub fn run_mixed(
        &self,
        scenario: &Scenario,
        healer: &mut dyn SelfHealer,
        wl: &QueryWorkload,
    ) -> Result<MixedRunResult, EngineError> {
        let mut tallies = Tallies::default();
        let mut cache = QueryCache::new(wl.cache_capacity);
        let mut frozen_cache = fg_core::FrozenQueryCache::new(wl.cache_capacity);
        let mut stream = QueryStream::new(wl);
        let mut stats = QueryStats::empty(wl);
        let total_events = scenario.events.len().max(1);
        let mut applied = 0usize;
        let mut issued = 0usize;
        let mut blocks = 0usize;

        for batch in scenario.events.chunks(self.batch_size) {
            let start = Instant::now();
            let report = healer.apply_batch(batch)?;
            tallies.fold(start.elapsed().as_secs_f64(), &report);

            // Reads ride between write batches: invalidate/repair from
            // the batch's typed outcomes, then serve this batch's share
            // of the query budget against the post-barrier view. The
            // maintenance is timed into its own bucket and charged to
            // the cached path's throughput.
            let view = healer.view();
            let start = Instant::now();
            cache.note_batch(&view, batch, &report);
            stats.maintain_seconds += start.elapsed().as_secs_f64();

            // The frozen tier pays its epoch costs up front, amortised
            // over the batch's whole query share: ghost maintenance
            // (adjacency extension + in-place landmark relaxation
            // against the live view's outcomes), then one image-only
            // CSR publish — so `frozen_qps` carries the full serving
            // price.
            let start = Instant::now();
            frozen_cache.note_batch(&view, batch, &report);
            stats.frozen_maintain_seconds += start.elapsed().as_secs_f64();
            let start = Instant::now();
            frozen_cache.publish(&view);
            stats.freeze_seconds += start.elapsed().as_secs_f64();
            applied += batch.len();
            let due = wl.queries * applied / total_events;
            let count = due.saturating_sub(issued);
            issued = due;
            if count == 0 {
                continue;
            }
            let block = stream.block(view.image(), count);

            let start = Instant::now();
            let cached: Vec<_> = block
                .iter()
                .map(|q| answer_cached(&mut cache, &view, q))
                .collect();
            stats.cached_seconds += start.elapsed().as_secs_f64();

            let start = Instant::now();
            let frozen_answers: Vec<_> = block
                .iter()
                .map(|q| answer_frozen(&mut frozen_cache, q))
                .collect();
            stats.frozen_seconds += start.elapsed().as_secs_f64();

            let start = Instant::now();
            let api: Vec<_> = block.iter().map(|q| answer_api(&view, q)).collect();
            stats.api_seconds += start.elapsed().as_secs_f64();

            // The naive baseline is sampled (`naive_every`) — full
            // per-query BFS on every block would distort the write-side
            // timings through sheer cache churn.
            let naive = if blocks.is_multiple_of(wl.naive_every.max(1)) {
                let start = Instant::now();
                let answers: Vec<_> = block.iter().map(|q| answer_naive(&view, q)).collect();
                stats.naive_seconds += start.elapsed().as_secs_f64();
                stats.naive_queries += answers.len();
                Some(answers)
            } else {
                None
            };
            blocks += 1;

            // All read paths must agree exactly (compared outside the
            // timed regions).
            for (i, q) in block.iter().enumerate() {
                let mut ok = answers_agree(q, &cached[i], &api[i], view.image());
                // Frozen scalar answers must *equal* the cached ones
                // (answers_agree is strict equality for non-path kinds);
                // frozen paths must be equally short and walk real edges
                // — the tier's resident landmark set differs from the
                // live cache's, so its gradient descent may legitimately
                // pick different nodes.
                ok &= answers_agree(q, &frozen_answers[i], &cached[i], view.image());
                if let Some(naive) = &naive {
                    ok &= answers_agree(q, &naive[i], &api[i], view.image());
                }
                stats.record(q, api[i].answered(), ok);
            }
        }
        stats.finish(&cache, &frozen_cache);
        Ok(MixedRunResult {
            run: tallies.into_result(self, scenario, healer),
            queries: stats,
        })
    }

    fn run_inner(
        &self,
        scenario: &Scenario,
        healer: &mut dyn SelfHealer,
        mut ingest: impl FnMut(
            &mut dyn SelfHealer,
            &[NetworkEvent],
        ) -> Result<fg_core::BatchReport, EngineError>,
    ) -> Result<RunResult, EngineError> {
        let mut tallies = Tallies::default();
        for batch in scenario.events.chunks(self.batch_size) {
            let start = Instant::now();
            let report = ingest(healer, batch)?;
            tallies.fold(start.elapsed().as_secs_f64(), &report);
        }
        Ok(tallies.into_result(self, scenario, healer))
    }
}

/// Per-batch accounting shared by every runner entry point.
#[derive(Debug, Default)]
struct Tallies {
    wall: f64,
    max_batch_ms: f64,
    batches: usize,
    edges_added: u64,
    edges_dropped: u64,
    helpers_created: u64,
    max_churn: u64,
    max_normalized_churn: f64,
}

impl Tallies {
    fn fold(&mut self, secs: f64, report: &fg_core::BatchReport) {
        self.wall += secs;
        self.max_batch_ms = self.max_batch_ms.max(secs * 1e3);
        self.batches += 1;
        self.edges_added += report.edges_added;
        self.edges_dropped += report.edges_dropped;
        self.helpers_created += report.helpers_created;
        self.max_churn = self.max_churn.max(report.max_churn);
        self.max_normalized_churn = self.max_normalized_churn.max(report.max_normalized_churn());
    }

    fn into_result(
        self,
        runner: &ScenarioRunner,
        scenario: &Scenario,
        healer: &dyn SelfHealer,
    ) -> RunResult {
        let events = scenario.events.len();
        let wall = self.wall;
        let batches = self.batches;
        RunResult {
            scenario: scenario.name.clone(),
            backend: healer.name().to_string(),
            events,
            deletes: scenario.deletions(),
            batch_size: runner.batch_size,
            wall_seconds: wall,
            events_per_sec: crate::rate(events as f64, wall),
            mean_batch_ms: crate::rate(wall * 1e3, batches as f64),
            max_batch_ms: self.max_batch_ms,
            final_nodes: healer.image().node_count(),
            final_edges: healer.image().edge_count(),
            nodes_ever: healer.ghost().nodes_ever(),
            threads: runner.threads,
            edges_added: self.edges_added,
            edges_dropped: self.edges_dropped,
            helpers_created: self.helpers_created,
            max_churn: self.max_churn,
            max_normalized_churn: self.max_normalized_churn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_core::{ForgivingGraph, PlacementPolicy};
    use fg_dist::DistHealer;
    use fg_graph::traversal;

    #[test]
    fn every_registered_workload_generates_and_runs() {
        for &name in WORKLOADS {
            let sc = scenario(name, 32, 120, 7);
            assert_eq!(sc.events.len(), 120, "{name}");
            let mut fg = ForgivingGraph::from_graph(&sc.initial).expect("fresh G0");
            let result = ScenarioRunner::new(16)
                .run(&sc, &mut fg)
                .unwrap_or_else(|e| panic!("{name}: {e:?}"));
            assert_eq!(result.events, 120, "{name}");
            assert!(result.deletes > 0, "{name} must exercise repairs");
            fg.check_invariants()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                traversal::is_connected(fg.image()),
                "{name} left the image disconnected"
            );
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = scenario("churn", 48, 200, 11);
        let b = scenario("churn", 48, 200, 11);
        assert_eq!(a, b);
        let c = scenario("churn", 48, 200, 12);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn engine_and_dist_agree_on_scenario_traces() {
        let sc = scenario("partition-then-heal", 24, 60, 3);
        let mut fg = ForgivingGraph::from_graph(&sc.initial).expect("fresh G0");
        let mut net = DistHealer::from_graph(&sc.initial, PlacementPolicy::Adjacent);
        let engine_run = ScenarioRunner::new(8)
            .run(&sc, &mut fg)
            .expect("engine run");
        let dist_run = ScenarioRunner::new(8).run(&sc, &mut net).expect("dist run");
        assert_eq!(SelfHealer::image(&net), fg.image());
        assert_eq!(SelfHealer::ghost(&net), fg.ghost());
        // Same structural reports under the façade ⇒ same aggregates.
        assert_eq!(dist_run.edges_added, engine_run.edges_added);
        assert_eq!(dist_run.edges_dropped, engine_run.edges_dropped);
        assert_eq!(dist_run.helpers_created, engine_run.helpers_created);
        assert_eq!(dist_run.max_churn, engine_run.max_churn);
    }

    #[test]
    fn dist_backend_agrees_across_thread_counts() {
        let sc = scenario("churn", 24, 80, 9);
        let run = |threads: usize| {
            let mut net =
                DistHealer::from_graph_threaded(&sc.initial, PlacementPolicy::Adjacent, threads);
            let result = ScenarioRunner::new(16)
                .with_threads(threads)
                .run(&sc, &mut net)
                .expect("dist run");
            assert_eq!(result.threads, threads);
            (
                SelfHealer::image(&net).clone(),
                net.network().forest_snapshot(),
                result.edges_added,
                result.edges_dropped,
                result.helpers_created,
                result.max_churn,
            )
        };
        let reference = run(1);
        for threads in [2, 4] {
            let (image, forest, added, dropped, helpers, churn) = run(threads);
            assert_eq!(image, reference.0, "{threads} threads: image diverged");
            assert_eq!(forest, reference.1, "{threads} threads: forest diverged");
            assert_eq!(
                (added, dropped, helpers, churn),
                (reference.2, reference.3, reference.4, reference.5)
            );
        }
    }

    #[test]
    fn mixed_runs_serve_exact_answers_on_both_backends() {
        let sc = scenario("churn", 32, 200, 13);
        let mut wl = QueryWorkload::new(400);
        wl.mix = crate::QueryMix::parse("dist:60,path:15,stretch:15,deg:5,comp:5").unwrap();
        wl.hot = 8;
        let runner = ScenarioRunner::new(25);

        let mut fg = ForgivingGraph::from_graph(&sc.initial).expect("fresh G0");
        let engine = runner.run_mixed(&sc, &mut fg, &wl).expect("engine run");
        let mut net = DistHealer::from_graph(&sc.initial, PlacementPolicy::Adjacent);
        let dist = runner.run_mixed(&sc, &mut net, &wl).expect("dist run");

        for result in [&engine, &dist] {
            let q = &result.queries;
            assert_eq!(q.queries, 400, "{}", result.run.backend);
            assert_eq!(q.mismatches, 0, "{}: cached != naive", result.run.backend);
            assert_eq!(q.by_kind.iter().map(|(_, c)| c).sum::<usize>(), q.queries);
            assert!(q.cache.hits > 0, "{}: no cache hits", result.run.backend);
            // The frozen tier's profile differs from the live cache's by
            // design: per-epoch memos re-miss instead of paying drops,
            // and ghost landmarks are repaired in place forever.
            assert!(
                q.frozen_cache.hits > 0,
                "{}: no frozen hits",
                result.run.backend
            );
            assert_eq!(
                q.frozen_cache.dropped, 0,
                "{}: the frozen tier never drops",
                result.run.backend
            );
            assert_eq!(
                q.frozen_cache.flushes, 0,
                "{}: the tier was fed every batch, so nothing flushes",
                result.run.backend
            );
        }
        // The query stream is deterministic and both backends hold
        // identical state, so the read side must agree exactly.
        assert_eq!(engine.queries.by_kind, dist.queries.by_kind);
        assert_eq!(engine.queries.unanswered, dist.queries.unanswered);
        assert_eq!(engine.queries.cache, dist.queries.cache);
        assert_eq!(engine.queries.frozen_cache, dist.queries.frozen_cache);
        // And the write side still folds the same aggregates as a plain
        // run of the same trace.
        let mut plain = ForgivingGraph::from_graph(&sc.initial).expect("fresh G0");
        let reference = runner.run(&sc, &mut plain).expect("plain run");
        assert_eq!(engine.run.edges_added, reference.edges_added);
        assert_eq!(engine.run.max_churn, reference.max_churn);
        let text = engine.to_json().pretty();
        assert!(text.contains("\"queries_per_sec_cached\""));
        assert!(text.contains("\"mismatches\": 0"));
    }

    #[test]
    fn trace_roundtrips_through_text() {
        let sc = scenario("er", 24, 50, 5);
        let text = sc.to_trace();
        let back = Scenario::read_trace("er", &text);
        assert_eq!(back.initial, sc.initial);
        assert_eq!(back.events, sc.events);
    }

    #[test]
    fn run_result_json_has_throughput_fields() {
        let sc = scenario("star", 16, 30, 2);
        let mut fg = ForgivingGraph::from_graph(&sc.initial).expect("fresh G0");
        let result = ScenarioRunner::new(10).run(&sc, &mut fg).expect("run");
        let text = result.to_json().pretty();
        assert!(text.contains("\"events_per_sec\""));
        assert!(text.contains("\"scenario\": \"star\""));
    }

    #[test]
    fn bench_json_artifacts_round_trip_through_the_parser() {
        // The full report shape `throughput` writes: config + mixed
        // results. Every field must survive a parse round-trip (no
        // `inf`/`NaN` leaks, stable float forms, parseable escapes).
        let sc = scenario("churn", 24, 80, 3);
        let mut fg = ForgivingGraph::from_graph(&sc.initial).expect("fresh G0");
        let mixed = ScenarioRunner::new(16)
            .run_mixed(&sc, &mut fg, &QueryWorkload::new(100))
            .expect("mixed run");
        let report = Json::obj()
            .field("bench", Json::str("throughput"))
            .field(
                "config",
                Json::obj()
                    .field("host_cpus", Json::Int(crate::host_cpus() as i64))
                    .field("events", Json::Int(80)),
            )
            .field("results", Json::Arr(vec![mixed.to_json()]));
        let text = report.pretty();
        let back = Json::parse(&text).expect("artifact must be parseable JSON");
        assert_eq!(back.pretty(), text, "parse→print must be a fixpoint");

        let result = match back.get("results") {
            Some(Json::Arr(items)) => &items[0],
            other => panic!("results array missing: {other:?}"),
        };
        for key in [
            "scenario",
            "backend",
            "events",
            "deletes",
            "batch_size",
            "wall_seconds",
            "events_per_sec",
            "mean_batch_ms",
            "max_batch_ms",
            "final_nodes",
            "final_edges",
            "nodes_ever",
            "threads",
            "edges_added",
            "edges_dropped",
            "helpers_created",
            "max_churn",
            "max_normalized_churn",
        ] {
            assert!(result.get(key).is_some(), "result field {key} missing");
        }
        // Rates render as floats even when the value is whole, so the
        // field's JSON type is stable across runs.
        for key in ["wall_seconds", "events_per_sec", "mean_batch_ms"] {
            assert!(
                matches!(result.get(key), Some(Json::Float(f)) if f.is_finite()),
                "{key} must parse back as a finite float"
            );
        }
        let queries = result.get("queries").expect("queries sub-object");
        for key in [
            "queries",
            "mix",
            "seed",
            "hot",
            "cache_capacity",
            "by_kind",
            "unanswered",
            "naive_queries",
            "mismatches",
            "cached_seconds",
            "maintain_seconds",
            "freeze_seconds",
            "frozen_maintain_seconds",
            "frozen_seconds",
            "api_seconds",
            "naive_seconds",
            "queries_per_sec_cached",
            "queries_per_sec_frozen",
            "queries_per_sec_api",
            "queries_per_sec_naive",
            "speedup_vs_naive",
            "speedup_vs_api",
            "speedup_frozen_vs_cached",
            "cache_hits",
            "cache_misses",
            "cache_repaired",
            "cache_dropped",
            "cache_evicted",
            "cache_flushes",
        ] {
            assert!(queries.get(key).is_some(), "queries field {key} missing");
        }
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let _ = scenario("nope", 16, 10, 1);
    }
}

//! A fixed log-bucket latency histogram — no dependencies, constant
//! memory, mergeable across threads.
//!
//! The bucketing is HDR-style: values below 2^`SUB_BITS` get exact
//! unit buckets; above that, each power-of-two octave is split into
//! 2^`SUB_BITS` linear sub-buckets, so relative error is bounded by
//! `1/2^SUB_BITS` (≈6% at the default 4 sub-bits) at every magnitude
//! from nanoseconds to minutes. That is exactly the precision a p50/p99
//! report needs, at 8 KiB per histogram, with `merge` a plain
//! element-wise add — each bench client records into its own histogram
//! and the driver folds them at the end.

use crate::json::Json;
use std::time::Duration;

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS`
/// linear buckets.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Enough buckets to index any `u64` nanosecond value.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Maps a nanosecond value to its bucket index.
fn bucket_index(ns: u64) -> usize {
    if ns < SUB as u64 {
        return ns as usize;
    }
    let exp = 63 - u64::from(ns.leading_zeros()); // >= SUB_BITS
    let mantissa = (ns >> (exp - u64::from(SUB_BITS))) as usize - SUB;
    ((exp - u64::from(SUB_BITS) + 1) as usize) * SUB + mantissa
}

/// The smallest nanosecond value mapping to `index` — the inverse used
/// when reading percentiles back out.
fn bucket_low(index: usize) -> u64 {
    if index < SUB {
        return index as u64;
    }
    let exp = (index / SUB - 1) as u64 + u64::from(SUB_BITS);
    let mantissa = (index % SUB) as u64;
    (SUB as u64 + mantissa) << (exp - u64::from(SUB_BITS))
}

/// A fixed log-bucket histogram of durations, in nanoseconds.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    total_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one nanosecond sample.
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.total_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another histogram in (per-thread recording, one merge).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Largest sample in nanoseconds (exact, not bucketed; 0 when empty).
    pub fn max_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max_ns
        }
    }

    /// Smallest sample in nanoseconds (exact; 0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// The `q`-quantile in nanoseconds (`q` in `[0, 1]`; e.g. `0.99`),
    /// reported as the lower bound of the bucket holding that sample —
    /// within one sub-bucket (≈6%) of the true value. 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // The rank of the q-quantile sample, 1-based, clamped into range.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_low(i).max(self.min_ns).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// The standard percentile report as a JSON object, in microseconds
    /// (`count`, `mean_us`, `p50_us`, `p90_us`, `p99_us`, `p999_us`,
    /// `min_us`, `max_us`) — the shape `serve_bench` writes into
    /// `BENCH_*.json`.
    pub fn to_json(&self) -> Json {
        let us = |ns: u64| Json::Float(ns as f64 / 1e3);
        Json::obj()
            .field("count", Json::Int(self.count as i64))
            .field("mean_us", Json::Float(self.mean_ns() / 1e3))
            .field("p50_us", us(self.quantile_ns(0.50)))
            .field("p90_us", us(self.quantile_ns(0.90)))
            .field("p99_us", us(self.quantile_ns(0.99)))
            .field("p999_us", us(self.quantile_ns(0.999)))
            .field("min_us", us(self.min_ns()))
            .field("max_us", us(self.max_ns()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone_and_invertible() {
        let mut last = 0;
        for ns in [
            0u64,
            1,
            15,
            16,
            17,
            100,
            1_000,
            65_535,
            65_536,
            1_000_000,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(ns);
            assert!(i >= last, "bucket_index must be monotone at {ns}");
            last = i;
            let low = bucket_low(i);
            assert!(low <= ns, "bucket_low({i}) = {low} > {ns}");
            // The bucket's lower bound is within one sub-bucket of the value.
            assert!(
                ns - low <= (ns >> SUB_BITS),
                "bucket too wide at {ns}: low {low}"
            );
        }
    }

    #[test]
    fn exhaustive_small_values_are_exact() {
        for ns in 0..(SUB as u64) {
            assert_eq!(bucket_low(bucket_index(ns)), ns);
        }
    }

    #[test]
    fn quantiles_order_and_bound() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=1000u64 {
            h.record_ns(ns * 1000); // 1µs..1ms
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_ns(0.50);
        let p99 = h.quantile_ns(0.99);
        let p999 = h.quantile_ns(0.999);
        assert!(p50 <= p99 && p99 <= p999 && p999 <= h.max_ns());
        // p50 of a uniform 1µs..1ms ramp is ~500µs, within bucket error.
        assert!((450_000..=500_000).contains(&p50), "p50 = {p50}");
        assert!(p99 >= 900_000, "p99 = {p99}");
        assert!(h.mean_ns() > 0.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..500u64 {
            let ns = (i * 7919) % 1_000_000;
            if i % 2 == 0 {
                a.record_ns(ns);
            } else {
                b.record_ns(ns);
            }
            all.record_ns(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max_ns(), all.max_ns());
        assert_eq!(a.min_ns(), all.min_ns());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile_ns(q), all.quantile_ns(q));
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        let text = h.to_json().pretty();
        assert!(text.contains("\"p99_us\""));
        assert!(text.contains("\"count\": 0"));
    }

    #[test]
    fn json_report_round_trips() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(120));
        h.record(Duration::from_micros(80));
        let text = h.to_json().pretty();
        let back = Json::parse(&text).expect("report parses");
        assert!(matches!(back.get("count"), Some(Json::Int(2))));
        assert!(matches!(back.get("p50_us"), Some(Json::Float(f)) if f.is_finite() && *f > 0.0));
    }
}

//! B4 — measurement-layer throughput: exact and sampled stretch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fg_adversary::{run_attack, RandomDeleter};
use fg_core::ForgivingGraph;
use fg_graph::generators;
use fg_metrics::{stretch_exact, stretch_sampled};
use std::hint::black_box;

fn attacked(n: usize) -> ForgivingGraph {
    let mut fg =
        ForgivingGraph::from_graph(&generators::connected_erdos_renyi(n, 8.0 / n as f64, 3))
            .expect("fresh");
    let mut adv = RandomDeleter::new(5, n / 2);
    run_attack(&mut fg, &mut adv, n).expect("attack is legal");
    fg
}

fn bench_stretch(c: &mut Criterion) {
    let mut group = c.benchmark_group("stretch");
    group.sample_size(20);
    for &n in &[128usize, 512] {
        let fg = attacked(n);
        group.bench_with_input(BenchmarkId::new("exact", n), &fg, |b, fg| {
            b.iter(|| stretch_exact(black_box(fg.image()), black_box(fg.ghost())));
        });
        group.bench_with_input(BenchmarkId::new("sampled16", n), &fg, |b, fg| {
            b.iter(|| stretch_sampled(black_box(fg.image()), black_box(fg.ghost()), 16, 7));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stretch);
criterion_main!(benches);

//! B2 — reference-engine throughput: insertions and self-healing
//! deletions (Theorem 1.3's sequential analogue).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fg_core::ForgivingGraph;
use fg_graph::{generators, NodeId};
use std::hint::black_box;

fn bench_delete_hub(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_delete_hub");
    for &d in &[16usize, 128, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter_batched(
                || ForgivingGraph::from_graph(&generators::star(d + 1)).expect("fresh"),
                |mut fg| {
                    let _ = fg.delete(black_box(NodeId::new(0))).expect("hub alive");
                    fg
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_cascade(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_cascade");
    group.sample_size(20);
    for &n in &[128usize, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || {
                    ForgivingGraph::from_graph(&generators::connected_erdos_renyi(
                        n,
                        8.0 / n as f64,
                        7,
                    ))
                    .expect("fresh")
                },
                |mut fg| {
                    for v in 0..(n as u32) / 2 {
                        let _ = fg.delete(NodeId::new(v)).expect("alive");
                    }
                    fg
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("engine_insert_deg3", |b| {
        b.iter_batched(
            || ForgivingGraph::from_graph(&generators::cycle(64)).expect("fresh"),
            |mut fg| {
                for i in 0..64u32 {
                    let t = NodeId::new(i % 64);
                    let u = NodeId::new((i + 21) % 64);
                    let w = NodeId::new((i + 42) % 64);
                    fg.insert(black_box(&[t, u, w])).expect("legal insert");
                }
                fg
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_delete_hub, bench_cascade, bench_insert);
criterion_main!(benches);

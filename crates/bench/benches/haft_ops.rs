//! B1 — haft operation throughput: build, strip, merge (paper §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fg_haft::{ops, Haft};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("haft_build");
    for &l in &[64usize, 1024, 16384] {
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            b.iter(|| Haft::build_from(black_box(0..l)));
        });
    }
    group.finish();
}

fn bench_strip(c: &mut Criterion) {
    let mut group = c.benchmark_group("haft_strip");
    for &l in &[63usize, 1023, 16383] {
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            b.iter_batched(
                || Haft::build_from(0..l),
                |h| ops::strip(black_box(h)),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("haft_merge");
    for &l in &[64usize, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            b.iter_batched(
                || {
                    vec![
                        Haft::build_from(0..l),
                        Haft::build_from(0..l / 2),
                        Haft::build_from(0..7),
                    ]
                },
                |hs| ops::merge(black_box(hs)),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_strip, bench_merge);
criterion_main!(benches);

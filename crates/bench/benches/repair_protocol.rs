//! B3 — distributed repair latency: full protocol runs to quiescence
//! (the wall-clock face of Lemma 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fg_core::PlacementPolicy;
use fg_dist::Network;
use fg_graph::{generators, NodeId};
use std::hint::black_box;

fn bench_protocol_hub(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_delete_hub");
    group.sample_size(20);
    for &d in &[8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter_batched(
                || Network::from_graph(&generators::star(d + 1), PlacementPolicy::Adjacent),
                |mut net| {
                    net.delete(black_box(NodeId::new(0))).expect("hub alive");
                    net
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_protocol_cascade(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_cascade");
    group.sample_size(10);
    for &n in &[32usize, 96] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || {
                    Network::from_graph(
                        &generators::connected_erdos_renyi(n, 8.0 / n as f64, 3),
                        PlacementPolicy::Adjacent,
                    )
                },
                |mut net| {
                    for v in 0..(n as u32) / 4 {
                        net.delete(NodeId::new(v)).expect("alive");
                    }
                    net
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocol_hub, bench_protocol_cascade);
criterion_main!(benches);

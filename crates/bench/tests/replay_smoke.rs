//! Smoke test for the `replay_trace` binary's checked-replay paths: the
//! binary must exit **nonzero** when a replay mismatches its reference
//! (it used to print and return success, which made it useless as a CI
//! gate) and zero when every requested check passes.

use fg_bench::replay::{format_digest_file, replay_digests, ReplayBackend};
use fg_bench::scenario;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_replay_trace"))
}

/// Writes a small trace + its true digest file, returning their paths.
fn fixture(tag: &str) -> (std::path::PathBuf, std::path::PathBuf, Vec<u64>) {
    let dir = std::env::temp_dir().join(format!("fg-replay-smoke-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let sc = scenario("churn", 16, 40, 5);
    let trace = dir.join("trace.txt");
    std::fs::write(&trace, sc.to_trace()).expect("write trace");
    let digests = replay_digests(&sc, ReplayBackend::Engine).expect("engine replay");
    let digest_file = dir.join("trace.digests");
    std::fs::write(&digest_file, format_digest_file("smoke", &digests)).expect("write digests");
    (trace, digest_file, digests)
}

#[test]
fn passing_checks_exit_zero() {
    let (trace, digest_file, _) = fixture("ok");
    let out = bin()
        .args([trace.to_str().unwrap(), "1"])
        .args(["--verify", "dist", "--threads", "2"])
        .args(["--expect-digest", digest_file.to_str().unwrap()])
        .output()
        .expect("running replay_trace");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "expected success, got {:?}\nstderr: {stderr}",
        out.status
    );
    assert!(stderr.contains("engine == dist"), "stderr: {stderr}");
    assert!(stderr.contains("digests match"), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"events\": 40"), "stdout: {stdout}");
}

#[test]
fn digest_drift_exits_nonzero() {
    let (trace, digest_file, mut digests) = fixture("drift");
    // Corrupt one recorded digest: the replay must detect the drift at
    // exactly that event and exit nonzero without printing throughput.
    digests[17] ^= 0xdead_beef;
    std::fs::write(&digest_file, format_digest_file("smoke", &digests)).expect("rewrite");
    let out = bin()
        .args([trace.to_str().unwrap(), "1"])
        .args(["--expect-digest", digest_file.to_str().unwrap()])
        .output()
        .expect("running replay_trace");
    assert_eq!(out.status.code(), Some(2), "drift must exit with status 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("digest drift at event 17"),
        "stderr: {stderr}"
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).is_empty(),
        "a failed check must not publish throughput numbers"
    );
}

#[test]
fn truncated_digest_file_exits_nonzero() {
    let (trace, digest_file, digests) = fixture("short");
    std::fs::write(
        &digest_file,
        format_digest_file("smoke", &digests[..digests.len() - 3]),
    )
    .expect("rewrite");
    let out = bin()
        .args([trace.to_str().unwrap(), "1"])
        .args(["--expect-digest", digest_file.to_str().unwrap()])
        .output()
        .expect("running replay_trace");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_flags_are_rejected() {
    // A typoed check flag must fail loudly, not let the gate pass with
    // the check silently skipped.
    let (trace, digest_file, _) = fixture("typo");
    let out = bin()
        .args([trace.to_str().unwrap(), "1"])
        .args(["--expect-digests", digest_file.to_str().unwrap()]) // extra 's'
        .output()
        .expect("running replay_trace");
    assert!(!out.status.success(), "typoed flag must not exit 0");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown flag --expect-digests"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn digest_out_writes_a_reusable_reference() {
    let (trace, _, digests) = fixture("out");
    let fresh = trace.with_file_name("fresh.digests");
    let out = bin()
        .args([trace.to_str().unwrap(), "1"])
        .args(["--digest-out", fresh.to_str().unwrap()])
        .output()
        .expect("running replay_trace");
    assert!(out.status.success());
    let written = fg_bench::replay::parse_digest_file(
        &std::fs::read_to_string(&fresh).expect("digest-out file"),
    );
    assert_eq!(written, digests);
}

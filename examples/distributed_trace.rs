//! Watch the message-passing protocol repair a deletion, round by round:
//! the literal subject of Lemma 4 — driven through the same `SelfHealer`
//! façade as every other healer, with the protocol's message accounting
//! read from underneath it.
//!
//! ```bash
//! cargo run --example distributed_trace
//! ```

use fg_core::{PlacementPolicy, SelfHealer};
use fg_dist::DistHealer;
use fg_graph::{generators, traversal, NodeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generators::star(17);
    let mut healer = DistHealer::from_graph(&g, PlacementPolicy::Adjacent);
    println!("star(17): hub n0 with 16 spokes — deleting the hub\n");

    let report = healer.delete(NodeId::new(0))?;
    let cost = healer.costs().last().expect("one repair ran").clone();
    println!("structural repair report (identical to the sequential engine's):");
    println!("  will entries  : {:>6}", report.will_entries);
    println!(
        "  fragments     : {:>6}   over {} affected nodes",
        report.fragments, report.affected_nodes
    );
    println!("  buckets       : {:>6}", report.buckets);
    println!(
        "  edges         : {:>6} added, {} dropped",
        report.edges_added, report.edges_dropped
    );
    println!(
        "  rebuilt RT    : {:>6} leaves, depth {}",
        report.rt_leaves, report.rt_depth
    );
    println!(
        "\nprotocol accounting (victim degree d = {}):",
        cost.victim_degree
    );
    println!(
        "  messages      : {:>6}   (Lemma 4: O(d log n))",
        cost.messages
    );
    println!("  ÷ d·⌈log₂ n⌉  : {:>9.2}", cost.normalized_messages());
    println!(
        "  rounds        : {:>6}   (Lemma 4: O(log d · log n))",
        cost.rounds
    );
    println!("  ÷ log d·log n : {:>9.2}", cost.normalized_rounds());
    println!("  total bits    : {:>6}", cost.bits);
    println!(
        "  biggest msg   : {:>6} bits (O(log n) names)",
        cost.max_message_bits
    );

    println!(
        "\nhealed network: {} nodes, {} edges, connected = {}, diameter = {:?}",
        healer.image().node_count(),
        healer.image().edge_count(),
        traversal::is_connected(healer.image()),
        traversal::diameter_exact(healer.image()),
    );

    // Now a cascade: keep deleting; costs stay within the envelopes.
    for v in [1u32, 2, 3, 4] {
        let report = healer.delete(NodeId::new(v))?;
        let c = healer.costs().last().expect("repair ran");
        println!(
            "delete n{v}: churn {} ({:.2} normalized), {} msgs ({:.2} normalized), {} rounds",
            report.churn(),
            report.normalized_churn(),
            c.messages,
            c.normalized_messages(),
            c.rounds
        );
    }
    assert!(traversal::is_connected(healer.image()));
    Ok(())
}

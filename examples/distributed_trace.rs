//! Watch the message-passing protocol repair a deletion, round by round:
//! the literal subject of Lemma 4.
//!
//! ```bash
//! cargo run --example distributed_trace
//! ```

use fg_core::PlacementPolicy;
use fg_dist::Network;
use fg_graph::{generators, traversal, NodeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generators::star(17);
    let mut net = Network::from_graph(&g, PlacementPolicy::Adjacent);
    println!("star(17): hub n0 with 16 spokes — deleting the hub\n");

    let cost = net.delete(NodeId::new(0))?;
    println!(
        "repair protocol accounting (victim degree d = {}):",
        cost.victim_degree
    );
    println!(
        "  messages      : {:>6}   (Lemma 4: O(d log n))",
        cost.messages
    );
    println!("  ÷ d·⌈log₂ n⌉  : {:>9.2}", cost.normalized_messages());
    println!(
        "  rounds        : {:>6}   (Lemma 4: O(log d · log n))",
        cost.rounds
    );
    println!("  ÷ log d·log n : {:>9.2}", cost.normalized_rounds());
    println!("  total bits    : {:>6}", cost.bits);
    println!(
        "  biggest msg   : {:>6} bits (O(log n) names)",
        cost.max_message_bits
    );

    println!(
        "\nhealed network: {} nodes, {} edges, connected = {}, diameter = {:?}",
        net.image().node_count(),
        net.image().edge_count(),
        traversal::is_connected(net.image()),
        traversal::diameter_exact(net.image()),
    );

    // Now a cascade: keep deleting; costs stay within the envelopes.
    for v in [1u32, 2, 3, 4] {
        let c = net.delete(NodeId::new(v))?;
        println!(
            "delete n{v}: {} msgs ({:.2} normalized), {} rounds",
            c.messages,
            c.normalized_messages(),
            c.rounds
        );
    }
    assert!(traversal::is_connected(net.image()));
    Ok(())
}

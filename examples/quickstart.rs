//! Quickstart: adopt a network, let an adversary attack it, watch it heal.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use fg_core::ForgivingGraph;
use fg_graph::{generators, traversal, NodeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64-node peer-to-peer overlay with heavy-tailed degrees.
    let g0 = generators::barabasi_albert(64, 2, 42);
    let mut network = ForgivingGraph::from_graph(&g0)?;
    println!(
        "initial: {} nodes, {} edges, diameter {:?}",
        network.image().node_count(),
        network.image().edge_count(),
        traversal::diameter_exact(network.image())
    );

    // The adversary kills the three biggest hubs, one per round. Every
    // deletion returns a full RepairReport — the paper's per-repair
    // quantities, no graph traversal needed.
    for _ in 0..3 {
        let hub = network
            .image()
            .iter()
            .max_by_key(|&v| network.image().degree(v))
            .expect("network is non-empty");
        let report = network.delete(hub)?;
        println!(
            "deleted {hub} (G' degree {}): will had {} entries, {} fragments from {} affected \
             nodes merged through {} buckets into a {}-leaf reconstruction tree of depth {} \
             in {} rounds (+{}/-{} edges, churn {}, normalized {:.2})",
            report.ghost_degree,
            report.will_entries,
            report.fragments,
            report.affected_nodes,
            report.buckets,
            report.rt_leaves,
            report.rt_depth,
            report.btv_rounds,
            report.edges_added,
            report.edges_dropped,
            report.churn(),
            report.normalized_churn(),
        );
    }

    // New peers join even while the network is scarred.
    let joined = fg_core::SelfHealer::insert(&mut network, &[NodeId::new(5), NodeId::new(9)])?;
    println!(
        "inserted {} attached to {} survivors (+{} edges)",
        joined.node, joined.neighbors, joined.edges_added
    );

    // The paper's two guarantees, measured:
    let health = fg_metrics::measure(&network);
    println!(
        "healed: connected = {}, max degree ratio = {:.2} (bound 3–4), \
         max stretch = {:.2} (bound {})",
        health.connected,
        health.degree.max_ratio,
        health.stretch.max,
        network.stretch_bound()
    );
    network.check_invariants()?;
    Ok(())
}

//! Quickstart: adopt a network, let an adversary attack it, watch it heal.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use fg_core::ForgivingGraph;
use fg_graph::{generators, traversal, NodeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64-node peer-to-peer overlay with heavy-tailed degrees.
    let g0 = generators::barabasi_albert(64, 2, 42);
    let mut network = ForgivingGraph::from_graph(&g0)?;
    println!(
        "initial: {} nodes, {} edges, diameter {:?}",
        network.image().node_count(),
        network.image().edge_count(),
        traversal::diameter_exact(network.image())
    );

    // The adversary kills the three biggest hubs, one per round.
    for _ in 0..3 {
        let hub = network
            .image()
            .iter()
            .max_by_key(|&v| network.image().degree(v))
            .expect("network is non-empty");
        let report = network.delete(hub)?;
        println!(
            "deleted {hub} (G' degree {}): rebuilt a {}-leaf reconstruction tree of depth {} \
             in {} merge rounds",
            report.ghost_degree, report.rt_leaves, report.rt_depth, report.btv_rounds
        );
    }

    // New peers join even while the network is scarred.
    let a = network.insert(&[NodeId::new(5), NodeId::new(9)])?;
    println!("inserted {a} attached to two survivors");

    // The paper's two guarantees, measured:
    let health = fg_metrics::measure(&network);
    println!(
        "healed: connected = {}, max degree ratio = {:.2} (bound 3–4), \
         max stretch = {:.2} (bound {})",
        health.connected,
        health.degree.max_ratio,
        health.stretch.max,
        network.stretch_bound()
    );
    network.check_invariants()?;
    Ok(())
}

//! The Theorem 2 adversary: repeatedly grow a star onto one victim, then
//! delete the victim — the workload that forces any self-healer to choose
//! between degree blow-up and stretch.
//!
//! ```bash
//! cargo run --release --example adversarial_star
//! ```

use fg_adversary::{run_attack, StarSmash};
use fg_core::ForgivingGraph;
use fg_graph::{generators, traversal};
use fg_metrics::measure;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut network = ForgivingGraph::from_graph(&generators::cycle(8))?;
    // Five rounds: insert 32 spokes onto a random victim, then kill it.
    let mut adversary = StarSmash::new(3, 32, 5);
    let log = run_attack(&mut network, &mut adversary, 1_000)?;
    println!(
        "adversary made {} insertions and {} hub deletions",
        log.insertions, log.deletions
    );

    let health = measure(&network);
    println!(
        "after the smash: {} alive of {} ever, connected = {}",
        health.alive, health.nodes_ever, health.connected
    );
    println!(
        "degree: max ratio {:.2} (paper bound 3, implementation envelope 4)",
        health.degree.max_ratio
    );
    println!(
        "stretch: max {:.2} vs bound {} — the log n cost Theorem 2 says is unavoidable",
        health.stretch.max,
        network.stretch_bound()
    );
    println!(
        "largest reconstruction tree: {:?} (leaves, depth)",
        network.rt_shapes().iter().max().copied()
    );
    assert!(traversal::is_connected(network.image()));
    network.check_invariants()?;
    Ok(())
}

//! A peer-to-peer overlay under sustained membership churn: nodes join
//! and crash for a thousand steps while the Forgiving Graph keeps the
//! overlay connected with bounded stretch.
//!
//! ```bash
//! cargo run --release --example p2p_churn
//! ```

use fg_adversary::{run_attack, ChurnAdversary};
use fg_core::ForgivingGraph;
use fg_graph::generators;
use fg_metrics::{measure_sampled, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut network = ForgivingGraph::from_graph(&generators::connected_erdos_renyi(128, 0.06, 1))?;
    let mut table = Table::new(
        "overlay health under churn (55% crashes / 45% joins)",
        [
            "step",
            "alive",
            "ever",
            "connected",
            "max stretch",
            "max deg ratio",
            "worst churn",
            "worst churn/(d·log n)",
        ],
    );
    let mut adv = ChurnAdversary::new(77, 0.55, 3, 16, 1000);
    for checkpoint in 0..10 {
        // The attack log carries every operation's typed report, so the
        // repair-cost columns need no graph traversal at all.
        let log = run_attack(&mut network, &mut adv, 100)?;
        let h = measure_sampled(&network, 32, checkpoint as u64);
        table.push_row([
            format!("{}", (checkpoint + 1) * 100),
            h.alive.to_string(),
            h.nodes_ever.to_string(),
            h.connected.to_string(),
            format!("{:.2}", h.stretch.max),
            format!("{:.2}", h.degree.max_ratio),
            log.report.max_churn.to_string(),
            format!("{:.2}", log.report.max_normalized_churn()),
        ]);
    }
    network.check_invariants()?;
    println!("{}", table.to_markdown());
    println!(
        "lifetime: {} repairs, {} helpers created, {} freed, +{}/-{} edge units, {} rep fallbacks",
        network.stats().deletes,
        network.stats().helpers_created,
        network.stats().helpers_freed,
        network.stats().edges_added,
        network.stats().edges_dropped,
        network.stats().rep_fallbacks
    );
    Ok(())
}

//! Query service quickstart: serve distance/path/stretch reads from a
//! self-healing network while an adversary churns it — off **frozen
//! epoch snapshots**, the way a real read tier would.
//!
//! The read side of the API: any [`SelfHealer`] hands out epoch-stamped
//! snapshot views (`view()`); `view().freeze()` publishes the epoch as
//! an immutable [`FrozenView`] — a compressed-sparse-row copy of the
//! live structure with bitset BFS kernels — that answers the same reads
//! bit-identically while the writer moves on. For a long-running
//! service, the [`FrozenQueryCache`] tier goes one step further: it
//! *owns* its snapshot. Each write batch costs one `note_batch` (the
//! persistent ghost-side landmark state folds the inserts and relaxes
//! back to exactness in place — the ghost is never re-frozen) and one
//! image-only `publish`; every read in the round is then answered from
//! dense landmark memos over the frozen arrays, with no reference back
//! into the writer's data structures at all.
//!
//! ```bash
//! cargo run --example query_service
//! ```
//!
//! [`SelfHealer`]: fg_core::SelfHealer
//! [`FrozenView`]: fg_core::FrozenView
//! [`FrozenQueryCache`]: fg_core::FrozenQueryCache

use fg_core::{FrozenQueryCache, PlacementPolicy, QueryOps, SelfHealer};
use fg_dist::DistHealer;
use fg_graph::{generators, NodeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The query service fronts the *distributed* healer: its views are
    // materialized at round barriers, so every snapshot is a consistent
    // picture of the message-passing protocol's state.
    let g0 = generators::barabasi_albert(96, 2, 7);
    let mut network = DistHealer::from_graph(&g0, PlacementPolicy::Adjacent);
    let mut tier = FrozenQueryCache::new(64);
    tier.publish(&network.view());

    // Two "popular" endpoints our imaginary users keep asking about.
    let (a, b) = (NodeId::new(40), NodeId::new(90));
    println!(
        "epoch {:?}: published — dist({a}, {b}) = {:?} via {:?}",
        tier.epoch(),
        tier.distance(a, b),
        tier.path(a, b),
    );

    // Adversarial churn: kill the biggest hub, let two peers join, and
    // keep serving reads throughout. Each write's typed outcome feeds
    // the tier's persistent ghost state; each round then publishes ONE
    // image-only snapshot and serves every read of the round from it.
    for round in 0..4 {
        let hub = {
            let image = SelfHealer::image(&network);
            image
                .iter()
                .max_by_key(|&v| image.degree(v))
                .expect("network is non-empty")
        };
        let event = fg_core::NetworkEvent::delete(hub);
        let outcome = network.apply_event(&event)?;
        tier.note_event(&network.view(), &event, &outcome);

        let event = fg_core::NetworkEvent::insert([a, b]);
        let outcome = network.apply_event(&event)?;
        tier.note_event(&network.view(), &event, &outcome);

        // Publish the round's epoch once; serve everything from it.
        tier.publish(&network.view());
        let (d, s) = (tier.distance(a, b), tier.stretch(a, b));
        println!(
            "round {round}: killed hub {hub}, epoch {:?} — \
             frozen dist({a}, {b}) = {d:?}, stretch = {}",
            tier.epoch(),
            s.map_or("n/a".into(), |s| format!("{s:.2}")),
        );

        // The tier is exact by construction: every scalar equals a
        // fresh BFS on the live snapshot, and paths are valid shortest
        // paths over the published image.
        let live = network.view();
        assert_eq!(d, live.distance(a, b));
        assert_eq!(s, live.stretch(a, b));
        assert_eq!(tier.path(a, b).map(|p| p.len()), d.map(|d| d as usize + 1));
    }

    let stats = tier.stats();
    println!(
        "served with {} hits / {} misses ({} ghost landmarks relaxed in place, {} flushes)",
        stats.hits, stats.misses, stats.repaired, stats.flushes
    );
    Ok(())
}

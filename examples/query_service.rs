//! Query service quickstart — now over a real socket: serve
//! distance/path/stretch reads from a self-healing network while an
//! adversary churns it, through the `fg-serve` TCP tier.
//!
//! The moving parts, exactly as a deployment would wire them:
//!
//! * a **writer** owns the healer behind a [`Publisher`]: every event
//!   batch heals and then publishes an immutable epoch-stamped snapshot
//!   into the [`SnapshotHub`](fg_serve::SnapshotHub);
//! * a **server** ([`Server`]) accepts connections and answers FGQ1
//!   requests from whatever snapshot is current, stamping every
//!   response with the `(epoch, digest)` certificate of the snapshot
//!   that answered it;
//! * a **client** ([`Client`]) connects over loopback and issues typed
//!   round trips — including a pipelined burst — and the demo asserts
//!   every served answer is bit-identical to asking the healer's view
//!   in-process.
//!
//! ```bash
//! cargo run --example query_service
//! ```
//!
//! [`Publisher`]: fg_serve::Publisher
//! [`Server`]: fg_serve::Server
//! [`Client`]: fg_serve::Client

use fg_core::{GraphView, NetworkEvent, PlacementPolicy, QueryOps, SelfHealer};
use fg_dist::DistHealer;
use fg_graph::{generators, NodeId};
use fg_serve::{Client, Publisher, Request, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The service fronts the *distributed* healer: its views are
    // materialized at round barriers, so every published snapshot is a
    // consistent picture of the message-passing protocol's state.
    let g0 = generators::barabasi_albert(96, 2, 7);
    let network = DistHealer::from_graph(&g0, PlacementPolicy::Adjacent);
    let mut publisher = Publisher::new(network);
    let hub = publisher.hub();

    // Port 0: the OS picks a free loopback port; a deployment would
    // bind a well-known address here.
    let server = Server::bind(
        ("127.0.0.1", 0),
        hub.clone(),
        ServerConfig {
            readers: 2,
            ..ServerConfig::default()
        },
    )?;
    println!("serving FGQ1 on {}", server.addr());

    let mut client = Client::connect(server.addr())?;
    let (a, b) = (NodeId::new(40), NodeId::new(90));
    let hello = client.epoch()?;
    println!(
        "connected — server is at epoch {} (certificate {:016x})",
        hello.epoch, hello.digest
    );
    let d = client.distance(a, b)?;
    println!("dist({a}, {b}) = {:?} @ epoch {}", d.value, d.epoch);

    // Adversarial churn: each round kills the biggest hub and lets two
    // peers join, then publishes ONE new epoch; the client keeps
    // querying over the same connection and watches the stamp advance.
    for round in 0..4 {
        let hub_node = {
            let image = publisher.healer().image();
            image
                .iter()
                .max_by_key(|&v| image.degree(v))
                .expect("network is non-empty")
        };
        let batch = [NetworkEvent::delete(hub_node), NetworkEvent::insert([a, b])];
        let _ = publisher.apply_and_publish(&batch)?;

        let d = client.distance(a, b)?;
        let s = client.stretch(a, b)?;
        let p = client.path(a, b)?;
        println!(
            "round {round}: killed hub {hub_node}, epoch {} — served dist({a}, {b}) = {:?}, \
             stretch = {}, path of {:?} nodes",
            d.epoch,
            d.value,
            s.value.map_or("n/a".into(), |s| format!("{s:.2}")),
            p.value.as_ref().map(Vec::len),
        );

        // The served answers are bit-identical to asking in-process:
        // same epoch, same certificate, same values.
        let view = publisher.healer().view();
        assert_eq!(d.epoch, view.epoch(), "stamp tracks the live epoch");
        assert_eq!(
            d.digest,
            publisher.digest(),
            "stamp carries the certificate"
        );
        assert_eq!(d.value, view.distance(a, b));
        assert_eq!(s.value, view.stretch(a, b));
        assert_eq!(p.value.map(|p| p.len()), d.value.map(|d| d as usize + 1));
    }

    // Pipelining: queue a burst of requests before reading any answer —
    // one connection, in-order responses, each individually stamped.
    let probes: Vec<NodeId> = (0..8).map(|i| NodeId::new(i * 11)).collect();
    for &u in &probes {
        client.send(&Request::Degree(u))?;
    }
    print!("pipelined degrees:");
    for &u in &probes {
        let response = client.recv()?;
        let body = response.body.expect("well-formed requests answer ok");
        if let fg_serve::ResponseBody::Degree(deg) = body {
            print!(" deg({u})={}", deg.map_or("dead".into(), |d| d.to_string()));
        }
    }
    println!();

    drop(client);
    let stats = server.stats();
    println!(
        "served {} requests over {} connections ({} protocol errors); shutting down",
        stats.served(),
        stats.accepted(),
        stats.protocol_errors()
    );
    server.shutdown();
    Ok(())
}

//! Query service quickstart: serve distance/path/stretch reads from a
//! self-healing network while an adversary churns it.
//!
//! The read side of the API: any [`SelfHealer`] hands out epoch-stamped
//! snapshot views (`view()`), every view answers `QueryOps` reads
//! exactly, and a [`QueryCache`] — incrementally invalidated by the
//! write path's own typed outcomes — serves hot sources in O(1) instead
//! of one BFS per query.
//!
//! ```bash
//! cargo run --example query_service
//! ```
//!
//! [`SelfHealer`]: fg_core::SelfHealer
//! [`QueryCache`]: fg_core::QueryCache

use fg_core::{GraphView, PlacementPolicy, QueryCache, QueryOps, SelfHealer};
use fg_dist::DistHealer;
use fg_graph::{generators, NodeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The query service fronts the *distributed* healer: its views are
    // materialized at round barriers, so every snapshot is a consistent
    // picture of the message-passing protocol's state.
    let g0 = generators::barabasi_albert(96, 2, 7);
    let mut network = DistHealer::from_graph(&g0, PlacementPolicy::Adjacent);
    let mut cache = QueryCache::new(64);

    // Two "popular" endpoints our imaginary users keep asking about.
    let (a, b) = (NodeId::new(40), NodeId::new(90));
    {
        let view = network.view();
        println!(
            "epoch {}: dist({a}, {b}) = {:?} via {:?}",
            view.epoch(),
            view.distance(a, b),
            view.path(a, b),
        );
    }

    // Adversarial churn: kill the biggest hub, let two peers join, and
    // keep serving reads from the same cache throughout. Each write's
    // typed outcome feeds the cache, so landmarks are repaired in place
    // (insertions relax, deletions drop only what the victim touched).
    for round in 0..4 {
        let hub = {
            let image = SelfHealer::image(&network);
            image
                .iter()
                .max_by_key(|&v| image.degree(v))
                .expect("network is non-empty")
        };
        let event = fg_core::NetworkEvent::delete(hub);
        let outcome = network.apply_event(&event)?;
        cache.note_event(&network.view(), &event, &outcome);

        let event = fg_core::NetworkEvent::insert([a, b]);
        let outcome = network.apply_event(&event)?;
        cache.note_event(&network.view(), &event, &outcome);

        let view = network.view();
        let (d, s) = (cache.distance(&view, a, b), cache.stretch(&view, a, b));
        println!(
            "round {round}: killed hub {hub}, epoch {} — cached dist({a}, {b}) = {d:?}, \
             stretch = {}",
            view.epoch(),
            s.map_or("n/a".into(), |s| format!("{s:.2}")),
        );
        // The cache is exact by construction: same answer as a fresh
        // bidirectional BFS on the snapshot.
        assert_eq!(d, view.distance(a, b));
        assert_eq!(
            cache.path(&view, a, b).map(|p| p.len()),
            d.map(|d| d as usize + 1)
        );
    }

    let stats = cache.stats();
    println!(
        "served with {} hits / {} misses ({} landmarks repaired in place, {} dropped)",
        stats.hits, stats.misses, stats.repaired, stats.dropped
    );
    Ok(())
}

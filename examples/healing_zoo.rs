//! The healing zoo: every strategy in the workspace facing the same
//! attack, so the design space of the paper's §1 is visible in one table.
//!
//! ```bash
//! cargo run --release --example healing_zoo
//! ```

use fg_adversary::{replay, run_attack, MaxDegreeDeleter};
use fg_baselines::{
    BinaryTreeHealer, CliqueHealer, CycleHealer, ForgivingTree, NoHealer, StarHealer,
};
use fg_core::{BatchReport, ForgivingGraph, SelfHealer};
use fg_graph::generators;
use fg_metrics::{f2, measure, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generators::barabasi_albert(96, 2, 9);
    let mut fg = ForgivingGraph::from_graph(&g)?;
    let mut adversary = MaxDegreeDeleter::new(48);
    let log = run_attack(&mut fg, &mut adversary, 96)?;

    let mut zoo: Vec<Box<dyn SelfHealer>> = vec![
        Box::new(ForgivingTree::from_graph(&g)),
        Box::new(CycleHealer::from_graph(&g)),
        Box::new(StarHealer::from_graph(&g)),
        Box::new(CliqueHealer::from_graph(&g)),
        Box::new(BinaryTreeHealer::from_graph(&g)),
        Box::new(NoHealer::from_graph(&g)),
    ];

    // Every healer answers the same trace with typed per-op reports, so
    // the repair-cost columns come straight from the API — no re-walks.
    let mut table = Table::new(
        &format!(
            "healing zoo — BA(96,2), {} hub deletions (same trace for everyone)",
            log.deletions
        ),
        [
            "healer",
            "connected",
            "max stretch",
            "max deg ratio",
            "edges",
            "edges healed in",
            "worst repair churn",
        ],
    );
    let zoo_row = |healer: &dyn SelfHealer, report: &BatchReport| {
        let h = measure(healer);
        [
            h.healer.to_string(),
            h.connected.to_string(),
            f2(h.stretch.max),
            f2(h.degree.max_ratio),
            healer.image().edge_count().to_string(),
            report.edges_added.to_string(),
            report.max_churn.to_string(),
        ]
    };
    table.push_row(zoo_row(&fg, &log.report));
    for healer in &mut zoo {
        let report = replay(healer.as_mut(), &log.events)?;
        table.push_row(zoo_row(healer.as_ref(), &report));
    }
    println!("{}", table.to_markdown());

    // The worst single repair, straight from the outcome stream.
    if let Some(worst) = log.report.repairs().max_by_key(|r| r.churn()) {
        println!(
            "forgiving-graph's worst repair: {} (G' degree {}) — {} fragments over {} \
             affected nodes, {} buckets, +{}/-{} edges, churn {}",
            worst.deleted,
            worst.ghost_degree,
            worst.fragments,
            worst.affected_nodes,
            worst.buckets,
            worst.edges_added,
            worst.edges_dropped,
            worst.churn()
        );
    }
    Ok(())
}
